"""Tenant sessions: one engine, one writer, one published snapshot.

A :class:`TenantSession` is the serving layer's unit of isolation, in the
spirit of pod-per-workload serving: each named tenant owns a private
:class:`~repro.engine.Engine` (its own stores, views, label space and
scheduler), so tenants can never observe — or corrupt — each other's state,
and admission control applies per tenant.

Concurrency contract (the load-bearing version of ``docs/api.md``'s
thread-safety notes):

* **writes** are serialized through the session's
  :class:`~repro.serve.ingest.IngestWorker`; nothing mutates the engine on
  any other thread.
* **reads** never touch the engine.  After every batch the worker publishes
  an immutable :class:`~repro.engine.EngineSnapshot` (frozen copy-on-write
  store snapshots + view materializations, stamped with the database's
  ``state_version``); readers load :attr:`TenantSession.snapshot` — a single
  attribute read, atomic in CPython — and serve the whole request from that
  pinned object.  A reader therefore observes one consistent version and
  never blocks behind an in-flight apply; the cost is the documented
  ``O(touched shards)`` copy-on-write the next write pays for the retained
  snapshot.
"""

from __future__ import annotations

import os
import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import Engine, EngineSnapshot
from repro.errors import EngineError
from repro.ivm.updates import Update
from repro.serve.ingest import Command, IngestWorker
from repro.serve.protocol import (
    ProtocolError,
    fields_spec_of,
    query_from_spec,
    record_from_spec,
)
from repro.surface.dsl import Dataset
from repro.surface.schema import Record

__all__ = ["SessionManager", "TenantRecoveringError", "TenantSession"]


class TenantRecoveringError(RuntimeError):
    """The tenant's engine is still replaying its WAL — retry shortly.

    Raised for requests that race a durable tenant's recovery (the
    background :meth:`SessionManager.recover_existing` warm-up after a
    server restart).  The server maps it to **503** with a ``Retry-After``
    header, which the SDK honors exactly like 429 backpressure.
    """

    def __init__(self, name: str, retry_after: float = 1.0) -> None:
        super().__init__(f"tenant {name!r} is recovering; retry shortly")
        self.tenant = name
        self.retry_after = retry_after


class TenantSession:
    """One tenant's engine plus its single-writer ingest pipeline."""

    def __init__(
        self,
        name: str,
        *,
        engine_options: Optional[Dict[str, Any]] = None,
        queue_depth: int = 256,
        coalesce: int = 64,
        sync_timeout: float = 30.0,
    ) -> None:
        self.name = name
        self.engine = Engine(**(engine_options or {}))
        self.sync_timeout = sync_timeout
        # Registered surface records, readable from handler threads.  Only
        # the writer thread mutates it, and Python dict reads are atomic.
        self.records: Dict[str, Record] = {}
        self.snapshot: EngineSnapshot = self.engine.snapshot()
        self.worker = IngestWorker(
            name,
            capacity=queue_depth,
            coalesce=coalesce,
            apply_batch=self._apply_batch,
            on_batch=self.publish_snapshot,
        )
        self._closed = False

    # ------------------------------------------------------------------ #
    # Writer-thread internals
    # ------------------------------------------------------------------ #
    def publish_snapshot(self) -> None:
        """Capture and publish a fresh consistent snapshot (worker thread)."""
        self.snapshot = self.engine.snapshot()

    def _apply_batch(self, updates: List[Update]) -> Dict[str, Any]:
        applied = self.engine.apply_stream(updates, batched=True)
        # Sync-before-ack: a durable tenant fsyncs the WAL (per the engine's
        # fsync policy) before any waiter in this batch is released, so a
        # synchronous apply the client saw acknowledged survives a crash.
        self.engine.sync_wal()
        return {"applied": applied, "version": self.engine.state_version}

    def _create_dataset(self, name: str, fields: Any, rows: Any) -> Dict[str, Any]:
        record = record_from_spec(name, fields)
        initial = None
        if rows is not None:
            from repro.serve.protocol import decode_value

            if not isinstance(rows, list):
                raise ProtocolError("dataset rows must be a list")
            initial = [decode_value(row) for row in rows]
        self.engine.dataset(name, record, rows=initial)
        self.records[name] = record
        return {
            "dataset": name,
            "fields": fields_spec_of(record),
            "version": self.engine.state_version,
        }

    def _create_view(self, name: str, query_spec: Any, strategy: str) -> Dict[str, Any]:
        datasets = {
            dataset_name: self.engine.dataset_handle(dataset_name)
            for dataset_name in self.engine.dataset_names()
            if isinstance(self.engine.dataset_handle(dataset_name), Dataset)
        }
        query = query_from_spec(query_spec, datasets)
        handle = self.engine.view(name, query, strategy=strategy)
        return {
            "view": name,
            "strategy": handle.strategy,
            "execution": handle.execution,
            "version": self.engine.state_version,
        }

    def _vacuum(self) -> Dict[str, Any]:
        return {"reclaimed": self.engine.vacuum(), "version": self.engine.state_version}

    # ------------------------------------------------------------------ #
    # Handler-thread API (enqueue + wait)
    # ------------------------------------------------------------------ #
    def submit_apply(self, update: Update) -> Command:
        """Enqueue one update; raises BackpressureError when at capacity."""
        return self.worker.submit(Command("apply", run=lambda: None, payload=update))

    def apply_sync(self, update: Update) -> Dict[str, Any]:
        return self.submit_apply(update).result(self.sync_timeout)

    def create_dataset(self, name: str, fields: Any, rows: Any = None) -> Dict[str, Any]:
        command = Command(
            "dataset", run=lambda: self._create_dataset(name, fields, rows)
        )
        return self.worker.submit(command).result(self.sync_timeout)

    def create_view(
        self, name: str, query_spec: Any, strategy: str = "auto"
    ) -> Dict[str, Any]:
        command = Command(
            "view", run=lambda: self._create_view(name, query_spec, strategy)
        )
        return self.worker.submit(command).result(self.sync_timeout)

    def vacuum(self) -> Dict[str, Any]:
        return self.worker.submit(Command("vacuum", run=self._vacuum)).result(
            self.sync_timeout
        )

    def checkpoint(self) -> Dict[str, Any]:
        """Cut a snapshot checkpoint without stalling ingest.

        The *capture* (cheap: frozen copy-on-write snapshots + a WAL
        rotation) runs on the writer thread — the ingest worker is the
        barrier that pins one consistent version — while the ``O(|DB|)``
        *encode + fsync* runs right here on the handler thread, so the
        worker is back to applying updates immediately.
        """
        if not self.engine.durable:
            raise ProtocolError(
                f"tenant {self.name!r} is not durable (server has no --data-dir)"
            )
        if self.engine.read_only is not None:
            # A read-only engine never opened its WAL; a checkpoint written
            # anyway would claim coverage it does not have and double-apply
            # the surviving WAL segments on the next open.
            raise ProtocolError(
                f"tenant {self.name!r} is read-only after recovery "
                f"({self.engine.read_only}); checkpoint refused"
            )
        capture = self.worker.submit(
            Command("checkpoint", run=self.engine.checkpoint_capture)
        ).result(self.sync_timeout)
        written = dict(self.engine.write_checkpoint(capture))
        written["tenant"] = self.name
        return written

    # ------------------------------------------------------------------ #
    # Read-side API (snapshot only — never blocks behind a write)
    # ------------------------------------------------------------------ #
    def view_handle(self, name: str):
        try:
            return self.engine[name]
        except EngineError:
            raise ProtocolError(f"no view named {name!r}", code="not_found") from None

    def dataset_record(self, name: str) -> Record:
        record = self.records.get(name)
        if record is None:
            raise ProtocolError(f"no dataset named {name!r}", code="not_found")
        return record

    def stats(self) -> Dict[str, Any]:
        snapshot = self.snapshot
        execution = self.engine.database.execution_report()
        return {
            "tenant": self.name,
            "state_version": snapshot.version,
            "datasets": len(snapshot.datasets),
            "views": len(snapshot.views),
            "queue_depth": self.worker.depth(),
            "queue_capacity": self.worker.capacity,
            "coalesce_bound": self.worker.coalesce,
            "retry_after_hint": self.worker.retry_after(),
            "ingest": self.worker.stats.to_dict(),
            # The execution backend the ingest worker's applies run on, plus
            # per-backend apply counts (see docs/serve.md, "Execution
            # backends under the ingest worker").
            "backend": execution["requested"],
            "backend_applies": execution["applies"],
            "durability": self.engine.durability_report(),
        }

    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True) -> None:
        """Drain the ingest queue (optionally), checkpoint, close the engine.

        The SIGTERM path (``drain=True``) on a durable, writable tenant
        cuts a final checkpoint after the queue drains, so the next open
        recovers from the checkpoint instead of replaying the whole WAL
        tail.  Best-effort: a failed checkpoint never blocks shutdown —
        the WAL already holds everything acknowledged.
        """
        if self._closed:
            return
        self._closed = True
        if drain:
            self.worker.drain_and_stop()
        else:
            self.worker.stop_now()
        if drain and self.engine.durable and self.engine.read_only is None:
            try:
                self.engine.checkpoint()
            except Exception:  # noqa: BLE001 - shutdown must proceed
                pass
        # Engine.close is idempotent and safe concurrently with an in-flight
        # apply; exercise and assert exactly that on every shutdown.
        self.engine.close()
        self.engine.close()
        assert self.engine.closed, "Engine.close() must leave the engine closed"


class SessionManager:
    """The named tenants of one server."""

    def __init__(
        self,
        *,
        engine_options: Optional[Dict[str, Any]] = None,
        queue_depth: int = 256,
        coalesce: int = 64,
        auto_create: bool = True,
        sync_timeout: float = 30.0,
        data_dir: Optional[str] = None,
        fsync: Optional[str] = None,
    ) -> None:
        self._engine_options = dict(engine_options or {})
        self._queue_depth = queue_depth
        self._coalesce = coalesce
        self._auto_create = auto_create
        self._sync_timeout = sync_timeout
        self._data_dir = data_dir
        self._fsync = fsync
        self._sessions: Dict[str, TenantSession] = {}
        self._recovering: set = set()
        # Tenants whose startup recovery raised: name → error summary.
        # They are no longer "recovering" (a later request retries the
        # open and surfaces the error), but /health keeps reporting them.
        self._recovery_failures: Dict[str, str] = {}
        self._lock = threading.Lock()

    @property
    def data_dir(self) -> Optional[str]:
        return self._data_dir

    def _tenant_options(self, name: str) -> Dict[str, Any]:
        options = dict(self._engine_options)
        if self._data_dir is not None:
            # One subdirectory per tenant: WAL + checkpoints never mix.
            options["data_dir"] = os.path.join(self._data_dir, name)
            if self._fsync is not None:
                options.setdefault("fsync", self._fsync)
        return options

    def _create(self, name: str) -> TenantSession:
        with self._lock:
            session = self._sessions.get(name)
            if session is None:
                session = self._sessions[name] = TenantSession(
                    name,
                    engine_options=self._tenant_options(name),
                    queue_depth=self._queue_depth,
                    coalesce=self._coalesce,
                    sync_timeout=self._sync_timeout,
                )
            return session

    def _has_durable_state(self, name: str) -> bool:
        return self._data_dir is not None and os.path.isdir(
            os.path.join(self._data_dir, name)
        )

    def get(self, name: str) -> TenantSession:
        if not name or name in (".", "..") or any(c in name for c in "/\\"):
            raise ProtocolError(f"bad tenant name {name!r}")
        session = self._sessions.get(name)
        if session is not None:
            return session
        if name in self._recovering:
            raise TenantRecoveringError(name)
        # A tenant with durable state on disk is "known" even when
        # auto-creation is off: opening it is a recovery, not a creation.
        if not self._auto_create and not self._has_durable_state(name):
            raise ProtocolError(f"unknown tenant {name!r}", code="not_found")
        return self._create(name)

    def recover_existing(self) -> Tuple[str, ...]:
        """Reopen every tenant with durable state under the data directory.

        Run from the server's background recovery thread at startup.  Every
        pending tenant is marked *recovering* up front, so requests that
        race the warm-up get a 503 + ``Retry-After`` rather than a blocking
        (or, worse, double) replay.
        """
        if self._data_dir is None:
            return ()
        try:
            names = sorted(
                name
                for name in os.listdir(self._data_dir)
                if os.path.isdir(os.path.join(self._data_dir, name))
            )
        except FileNotFoundError:
            return ()
        names = [name for name in names if name not in self._sessions]
        self._recovering.update(names)
        recovered = []
        try:
            for name in names:
                try:
                    self._create(name)
                    recovered.append(name)
                except Exception as error:  # noqa: BLE001 - one damaged
                    # tenant must not kill the recovery thread and strand
                    # every later name in _recovering (a permanent 503).
                    self._recovery_failures[name] = (
                        f"{type(error).__name__}: {error}"
                    )
                finally:
                    self._recovering.discard(name)
        finally:
            # Whatever interrupts the loop, no tenant stays marked
            # recovering forever.
            self._recovering.difference_update(names)
        return tuple(recovered)

    def recovering(self) -> Tuple[str, ...]:
        return tuple(sorted(self._recovering))

    def recovery_failures(self) -> Dict[str, str]:
        """Tenants whose startup recovery raised, with the error summary."""
        return dict(self._recovery_failures)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._sessions))

    def stats(self) -> Dict[str, Any]:
        return {name: self._sessions[name].stats() for name in self.names()}

    def close_all(self, drain: bool = True) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close(drain=drain)
