"""Tenant sessions: one engine, one writer, one published snapshot.

A :class:`TenantSession` is the serving layer's unit of isolation, in the
spirit of pod-per-workload serving: each named tenant owns a private
:class:`~repro.engine.Engine` (its own stores, views, label space and
scheduler), so tenants can never observe — or corrupt — each other's state,
and admission control applies per tenant.

Concurrency contract (the load-bearing version of ``docs/api.md``'s
thread-safety notes):

* **writes** are serialized through the session's
  :class:`~repro.serve.ingest.IngestWorker`; nothing mutates the engine on
  any other thread.
* **reads** never touch the engine.  After every batch the worker publishes
  an immutable :class:`~repro.engine.EngineSnapshot` (frozen copy-on-write
  store snapshots + view materializations, stamped with the database's
  ``state_version``); readers load :attr:`TenantSession.snapshot` — a single
  attribute read, atomic in CPython — and serve the whole request from that
  pinned object.  A reader therefore observes one consistent version and
  never blocks behind an in-flight apply; the cost is the documented
  ``O(touched shards)`` copy-on-write the next write pays for the retained
  snapshot.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from repro.engine import Engine, EngineSnapshot
from repro.errors import EngineError
from repro.ivm.updates import Update
from repro.serve.ingest import Command, IngestWorker
from repro.serve.protocol import (
    ProtocolError,
    fields_spec_of,
    query_from_spec,
    record_from_spec,
)
from repro.surface.dsl import Dataset
from repro.surface.schema import Record

__all__ = ["SessionManager", "TenantSession"]


class TenantSession:
    """One tenant's engine plus its single-writer ingest pipeline."""

    def __init__(
        self,
        name: str,
        *,
        engine_options: Optional[Dict[str, Any]] = None,
        queue_depth: int = 256,
        coalesce: int = 64,
        sync_timeout: float = 30.0,
    ) -> None:
        self.name = name
        self.engine = Engine(**(engine_options or {}))
        self.sync_timeout = sync_timeout
        # Registered surface records, readable from handler threads.  Only
        # the writer thread mutates it, and Python dict reads are atomic.
        self.records: Dict[str, Record] = {}
        self.snapshot: EngineSnapshot = self.engine.snapshot()
        self.worker = IngestWorker(
            name,
            capacity=queue_depth,
            coalesce=coalesce,
            apply_batch=self._apply_batch,
            on_batch=self.publish_snapshot,
        )
        self._closed = False

    # ------------------------------------------------------------------ #
    # Writer-thread internals
    # ------------------------------------------------------------------ #
    def publish_snapshot(self) -> None:
        """Capture and publish a fresh consistent snapshot (worker thread)."""
        self.snapshot = self.engine.snapshot()

    def _apply_batch(self, updates: List[Update]) -> Dict[str, Any]:
        applied = self.engine.apply_stream(updates, batched=True)
        return {"applied": applied, "version": self.engine.state_version}

    def _create_dataset(self, name: str, fields: Any, rows: Any) -> Dict[str, Any]:
        record = record_from_spec(name, fields)
        initial = None
        if rows is not None:
            from repro.serve.protocol import decode_value

            if not isinstance(rows, list):
                raise ProtocolError("dataset rows must be a list")
            initial = [decode_value(row) for row in rows]
        self.engine.dataset(name, record, rows=initial)
        self.records[name] = record
        return {
            "dataset": name,
            "fields": fields_spec_of(record),
            "version": self.engine.state_version,
        }

    def _create_view(self, name: str, query_spec: Any, strategy: str) -> Dict[str, Any]:
        datasets = {
            dataset_name: self.engine.dataset_handle(dataset_name)
            for dataset_name in self.engine.dataset_names()
            if isinstance(self.engine.dataset_handle(dataset_name), Dataset)
        }
        query = query_from_spec(query_spec, datasets)
        handle = self.engine.view(name, query, strategy=strategy)
        return {
            "view": name,
            "strategy": handle.strategy,
            "execution": handle.execution,
            "version": self.engine.state_version,
        }

    def _vacuum(self) -> Dict[str, Any]:
        return {"reclaimed": self.engine.vacuum(), "version": self.engine.state_version}

    # ------------------------------------------------------------------ #
    # Handler-thread API (enqueue + wait)
    # ------------------------------------------------------------------ #
    def submit_apply(self, update: Update) -> Command:
        """Enqueue one update; raises BackpressureError when at capacity."""
        return self.worker.submit(Command("apply", run=lambda: None, payload=update))

    def apply_sync(self, update: Update) -> Dict[str, Any]:
        return self.submit_apply(update).result(self.sync_timeout)

    def create_dataset(self, name: str, fields: Any, rows: Any = None) -> Dict[str, Any]:
        command = Command(
            "dataset", run=lambda: self._create_dataset(name, fields, rows)
        )
        return self.worker.submit(command).result(self.sync_timeout)

    def create_view(
        self, name: str, query_spec: Any, strategy: str = "auto"
    ) -> Dict[str, Any]:
        command = Command(
            "view", run=lambda: self._create_view(name, query_spec, strategy)
        )
        return self.worker.submit(command).result(self.sync_timeout)

    def vacuum(self) -> Dict[str, Any]:
        return self.worker.submit(Command("vacuum", run=self._vacuum)).result(
            self.sync_timeout
        )

    # ------------------------------------------------------------------ #
    # Read-side API (snapshot only — never blocks behind a write)
    # ------------------------------------------------------------------ #
    def view_handle(self, name: str):
        try:
            return self.engine[name]
        except EngineError:
            raise ProtocolError(f"no view named {name!r}", code="not_found") from None

    def dataset_record(self, name: str) -> Record:
        record = self.records.get(name)
        if record is None:
            raise ProtocolError(f"no dataset named {name!r}", code="not_found")
        return record

    def stats(self) -> Dict[str, Any]:
        snapshot = self.snapshot
        execution = self.engine.database.execution_report()
        return {
            "tenant": self.name,
            "state_version": snapshot.version,
            "datasets": len(snapshot.datasets),
            "views": len(snapshot.views),
            "queue_depth": self.worker.depth(),
            "queue_capacity": self.worker.capacity,
            "coalesce_bound": self.worker.coalesce,
            "retry_after_hint": self.worker.retry_after(),
            "ingest": self.worker.stats.to_dict(),
            # The execution backend the ingest worker's applies run on, plus
            # per-backend apply counts (see docs/serve.md, "Execution
            # backends under the ingest worker").
            "backend": execution["requested"],
            "backend_applies": execution["applies"],
        }

    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True) -> None:
        """Drain the ingest queue (optionally) and close the engine."""
        if self._closed:
            return
        self._closed = True
        if drain:
            self.worker.drain_and_stop()
        else:
            self.worker.stop_now()
        self.engine.close()


class SessionManager:
    """The named tenants of one server."""

    def __init__(
        self,
        *,
        engine_options: Optional[Dict[str, Any]] = None,
        queue_depth: int = 256,
        coalesce: int = 64,
        auto_create: bool = True,
        sync_timeout: float = 30.0,
    ) -> None:
        self._engine_options = dict(engine_options or {})
        self._queue_depth = queue_depth
        self._coalesce = coalesce
        self._auto_create = auto_create
        self._sync_timeout = sync_timeout
        self._sessions: Dict[str, TenantSession] = {}
        self._lock = threading.Lock()

    def get(self, name: str) -> TenantSession:
        if not name or "/" in name:
            raise ProtocolError(f"bad tenant name {name!r}")
        session = self._sessions.get(name)
        if session is not None:
            return session
        if not self._auto_create:
            raise ProtocolError(f"unknown tenant {name!r}", code="not_found")
        with self._lock:
            session = self._sessions.get(name)
            if session is None:
                session = self._sessions[name] = TenantSession(
                    name,
                    engine_options=self._engine_options,
                    queue_depth=self._queue_depth,
                    coalesce=self._coalesce,
                    sync_timeout=self._sync_timeout,
                )
            return session

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._sessions))

    def stats(self) -> Dict[str, Any]:
        return {name: self._sessions[name].stats() for name in self.names()}

    def close_all(self, drain: bool = True) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close(drain=drain)
