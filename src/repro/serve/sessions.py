"""Tenant sessions: one engine, one writer, one published snapshot.

A :class:`TenantSession` is the serving layer's unit of isolation, in the
spirit of pod-per-workload serving: each named tenant owns a private
:class:`~repro.engine.Engine` (its own stores, views, label space and
scheduler), so tenants can never observe — or corrupt — each other's state,
and admission control applies per tenant.

Concurrency contract (the load-bearing version of ``docs/api.md``'s
thread-safety notes):

* **writes** are serialized through the session's
  :class:`~repro.serve.ingest.IngestWorker`; nothing mutates the engine on
  any other thread.
* **reads** never touch the engine.  After every batch the worker publishes
  an immutable :class:`~repro.engine.EngineSnapshot` (frozen copy-on-write
  store snapshots + view materializations, stamped with the database's
  ``state_version``); readers load :attr:`TenantSession.snapshot` — a single
  attribute read, atomic in CPython — and serve the whole request from that
  pinned object.  A reader therefore observes one consistent version and
  never blocks behind an in-flight apply; the cost is the documented
  ``O(touched shards)`` copy-on-write the next write pays for the retained
  snapshot.
"""

from __future__ import annotations

import os
import shutil
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.durability.manager import load_replication_state, store_replication_state
from repro.engine import Engine, EngineSnapshot
from repro.errors import EngineError
from repro.ivm.updates import Update
from repro.replication.feed import (
    count_lag,
    encode_frames,
    frame_payload,
    install_bootstrap,
    package_bootstrap,
    read_frames,
    wal_end_position,
)
from repro.replication.feed import append_mirror_frames
from repro.replication.subscriber import ReplicaLink
from repro.serve.ingest import Command, IngestWorker
from repro.serve.protocol import (
    ProtocolError,
    fields_spec_of,
    query_from_spec,
    record_from_spec,
)
from repro.surface.dsl import Dataset
from repro.surface.schema import Record

__all__ = [
    "SessionManager",
    "TenantNotWritableError",
    "TenantRecoveringError",
    "TenantSession",
]


class TenantRecoveringError(RuntimeError):
    """The tenant's engine is still replaying its WAL — retry shortly.

    Raised for requests that race a durable tenant's recovery (the
    background :meth:`SessionManager.recover_existing` warm-up after a
    server restart).  The server maps it to **503** with a ``Retry-After``
    header, which the SDK honors exactly like 429 backpressure.
    """

    def __init__(self, name: str, retry_after: float = 1.0) -> None:
        super().__init__(f"tenant {name!r} is recovering; retry shortly")
        self.tenant = name
        self.retry_after = retry_after


class TenantNotWritableError(RuntimeError):
    """The tenant is a replica or a fenced ex-primary — writes go elsewhere.

    The server maps it to **503** *without* a ``Retry-After`` header: the
    plain SDK surfaces it immediately (retrying the same node would never
    succeed), while :class:`~repro.client.failover.FailoverClient` treats
    it as the signal to re-locate the primary.
    """

    def __init__(self, name: str, role: str, reason: Optional[str] = None) -> None:
        detail = f" ({reason})" if reason else ""
        described = "fenced" if role == "fenced" else f"a {role}"
        super().__init__(
            f"tenant {name!r} is {described} and does not accept writes{detail}; "
            f"send writes to the current primary"
        )
        self.tenant = name
        self.role = role


class TenantSession:
    """One tenant's engine plus its single-writer ingest pipeline."""

    def __init__(
        self,
        name: str,
        *,
        engine_options: Optional[Dict[str, Any]] = None,
        queue_depth: int = 256,
        coalesce: int = 64,
        sync_timeout: float = 30.0,
        replica_of: Optional[str] = None,
        poll_wait: float = 5.0,
        poll_interval: float = 0.05,
    ) -> None:
        self.name = name
        options = dict(engine_options or {})
        self._engine_options = options
        self._data_dir: Optional[str] = options.get("data_dir")
        self.sync_timeout = sync_timeout
        # Role resolution happens BEFORE the engine opens: the persisted
        # replication state decides whether recovery runs in standby mode.
        # A tenant promoted to primary stays primary across restarts even
        # when the server is (still) configured with --replica-of; a fenced
        # ex-primary reconfigured as a replica must reseed from a shipped
        # checkpoint (its WAL diverged from the new primary's at the fork).
        persisted = (
            load_replication_state(self._data_dir)
            if self._data_dir is not None
            else {"epoch": 0, "role": None, "fenced": None}
        )
        need_reseed = False
        if replica_of is not None and self._data_dir is None:
            raise ProtocolError(
                f"tenant {name!r} cannot be a replica: replication requires "
                f"a durable server (--data-dir)"
            )
        if persisted["role"] == "primary":
            role = "primary"
            replica_of = None
        elif replica_of is not None:
            role = "replica"
            options["standby"] = True
            need_reseed = persisted["fenced"] is not None
        elif persisted["fenced"] is not None:
            role = "fenced"
        else:
            role = "primary"
        self.role = role
        self.replica_of = replica_of
        self.engine = Engine(**options)
        # Registered surface records, readable from handler threads.  Only
        # the writer thread mutates it, and Python dict reads are atomic.
        self.records: Dict[str, Record] = {}
        self.snapshot: EngineSnapshot = self.engine.snapshot()
        self.worker = IngestWorker(
            name,
            capacity=queue_depth,
            coalesce=coalesce,
            apply_batch=self._apply_batch,
            on_batch=self.publish_snapshot,
        )
        self._closed = False
        self.link: Optional[ReplicaLink] = None
        if role == "replica":
            assert replica_of is not None
            self.link = ReplicaLink(
                replica_of,
                name,
                position=lambda: wal_end_position(self._wal_dir()),
                apply=self._link_apply,
                reseed=self._link_reseed,
                # Late-bound through self: a reseed swaps self.engine out.
                observe_epoch=lambda epoch: self.engine.set_replication_epoch(epoch),
                local_epoch=lambda: self.engine.replication_epoch,
                poll_wait=poll_wait,
                poll_interval=poll_interval,
                need_reseed=need_reseed,
            )
            self.link.start()

    def _wal_dir(self) -> str:
        assert self._data_dir is not None
        return os.path.join(self._data_dir, "wal")

    def _checkpoint_root(self) -> str:
        assert self._data_dir is not None
        return os.path.join(self._data_dir, "checkpoints")

    def _check_writable(self) -> None:
        if self.role != "primary":
            raise TenantNotWritableError(self.name, self.role, self.engine.read_only)

    # ------------------------------------------------------------------ #
    # Writer-thread internals
    # ------------------------------------------------------------------ #
    def publish_snapshot(self) -> None:
        """Capture and publish a fresh consistent snapshot (worker thread)."""
        self.snapshot = self.engine.snapshot()

    def _apply_batch(self, updates: List[Update]) -> Dict[str, Any]:
        applied = self.engine.apply_stream(updates, batched=True)
        # Sync-before-ack: a durable tenant fsyncs the WAL (per the engine's
        # fsync policy) before any waiter in this batch is released, so a
        # synchronous apply the client saw acknowledged survives a crash.
        self.engine.sync_wal()
        return {"applied": applied, "version": self.engine.state_version}

    def _create_dataset(self, name: str, fields: Any, rows: Any) -> Dict[str, Any]:
        record = record_from_spec(name, fields)
        initial = None
        if rows is not None:
            from repro.serve.protocol import decode_value

            if not isinstance(rows, list):
                raise ProtocolError("dataset rows must be a list")
            initial = [decode_value(row) for row in rows]
        self.engine.dataset(name, record, rows=initial)
        self.records[name] = record
        # Control commands get the same sync-before-ack barrier as applies:
        # an acknowledged schema change must survive a crash — and become
        # visible to WAL subscribers — without waiting for the next write.
        self.engine.sync_wal()
        return {
            "dataset": name,
            "fields": fields_spec_of(record),
            "version": self.engine.state_version,
        }

    def _create_view(self, name: str, query_spec: Any, strategy: str) -> Dict[str, Any]:
        datasets = {
            dataset_name: self.engine.dataset_handle(dataset_name)
            for dataset_name in self.engine.dataset_names()
            if isinstance(self.engine.dataset_handle(dataset_name), Dataset)
        }
        query = query_from_spec(query_spec, datasets)
        handle = self.engine.view(name, query, strategy=strategy)
        self.engine.sync_wal()
        return {
            "view": name,
            "strategy": handle.strategy,
            "execution": handle.execution,
            "version": self.engine.state_version,
        }

    def _vacuum(self) -> Dict[str, Any]:
        reclaimed = self.engine.vacuum()
        self.engine.sync_wal()
        return {"reclaimed": reclaimed, "version": self.engine.state_version}

    # ------------------------------------------------------------------ #
    # Replica-side writer internals (the link's ship/reseed callables)
    # ------------------------------------------------------------------ #
    def _link_apply(self, frames: List[Tuple[int, int, bytes]], chaos: Any) -> None:
        """Link thread: run one shipped batch through the single writer."""
        self.worker.submit(
            Command("ship", run=lambda: self._ship(frames, chaos))
        ).result(self.sync_timeout)

    def _ship(self, frames: List[Tuple[int, int, bytes]], chaos: Any) -> Dict[str, Any]:
        """Worker thread: mirror + fsync the frames, then apply each payload.

        The standby check comes FIRST: a ship command that raced a
        promotion (fetched before the link paused, dequeued after the
        promote barrier) must not append foreign frames into what is now a
        writable primary's WAL.  Mirror-then-apply ordering means a crash
        between the two leaves durable bytes ahead of engine state — the
        safe direction, since restart rebuilds the engine from the mirror.
        """
        if not self.engine.standby:
            raise EngineError(
                f"tenant {self.name!r} is no longer a standby; shipped batch refused"
            )
        append_mirror_frames(self._wal_dir(), frames, fsync=True)
        chaos("replica.mid_apply")
        for _segment, _offset, frame in frames:
            self.engine.apply_replicated(frame_payload(frame))
        return {"version": self.engine.state_version}

    def _link_reseed(self, bootstrap: Dict[str, Any]) -> None:
        """Link thread: rebuild the tenant from a shipped checkpoint."""
        self.worker.submit(
            Command("reseed", run=lambda: self._reseed(bootstrap))
        ).result(self.sync_timeout)

    def _reseed(self, bootstrap: Dict[str, Any]) -> Dict[str, Any]:
        """Worker thread: wipe-and-reinstall, then reopen the standby engine.

        Runs as a worker barrier, so no apply is in flight while the engine
        is swapped out.  An empty ``bootstrap`` means the upstream has no
        checkpoint yet — the stream starts at segment 1 and a plain wipe
        suffices.
        """
        epoch = self.engine.replication_epoch
        self.engine.close()
        if bootstrap:
            install_bootstrap(self._data_dir, bootstrap)
            epoch = max(epoch, int(bootstrap.get("epoch", 0)))
        else:
            shutil.rmtree(self._wal_dir(), ignore_errors=True)
            shutil.rmtree(self._checkpoint_root(), ignore_errors=True)
        # Clearing any persisted fence: a reseeded directory is a clean
        # replica of the current primary, not a diverged ex-primary.
        store_replication_state(self._data_dir, epoch, "replica", None)
        options = dict(self._engine_options)
        options["standby"] = True
        self.engine = Engine(**options)
        self.records.clear()
        return {"reseeded": True, "version": self.engine.state_version}

    # ------------------------------------------------------------------ #
    # Handler-thread API (enqueue + wait)
    # ------------------------------------------------------------------ #
    def submit_apply(self, update: Update) -> Command:
        """Enqueue one update; raises BackpressureError when at capacity."""
        self._check_writable()
        return self.worker.submit(Command("apply", run=lambda: None, payload=update))

    def apply_sync(self, update: Update) -> Dict[str, Any]:
        return self.submit_apply(update).result(self.sync_timeout)

    def create_dataset(self, name: str, fields: Any, rows: Any = None) -> Dict[str, Any]:
        self._check_writable()
        command = Command(
            "dataset", run=lambda: self._create_dataset(name, fields, rows)
        )
        return self.worker.submit(command).result(self.sync_timeout)

    def create_view(
        self, name: str, query_spec: Any, strategy: str = "auto"
    ) -> Dict[str, Any]:
        self._check_writable()
        command = Command(
            "view", run=lambda: self._create_view(name, query_spec, strategy)
        )
        return self.worker.submit(command).result(self.sync_timeout)

    def vacuum(self) -> Dict[str, Any]:
        self._check_writable()
        return self.worker.submit(Command("vacuum", run=self._vacuum)).result(
            self.sync_timeout
        )

    def checkpoint(self) -> Dict[str, Any]:
        """Cut a snapshot checkpoint without stalling ingest.

        The *capture* (cheap: frozen copy-on-write snapshots + a WAL
        rotation) runs on the writer thread — the ingest worker is the
        barrier that pins one consistent version — while the ``O(|DB|)``
        *encode + fsync* runs right here on the handler thread, so the
        worker is back to applying updates immediately.
        """
        self._check_writable()
        if not self.engine.durable:
            raise ProtocolError(
                f"tenant {self.name!r} is not durable (server has no --data-dir)"
            )
        if self.engine.read_only is not None:
            # A read-only engine never opened its WAL; a checkpoint written
            # anyway would claim coverage it does not have and double-apply
            # the surviving WAL segments on the next open.
            raise ProtocolError(
                f"tenant {self.name!r} is read-only after recovery "
                f"({self.engine.read_only}); checkpoint refused"
            )
        capture = self.worker.submit(
            Command("checkpoint", run=self.engine.checkpoint_capture)
        ).result(self.sync_timeout)
        written = dict(self.engine.write_checkpoint(capture))
        written["tenant"] = self.name
        return written

    # ------------------------------------------------------------------ #
    # Replication: the WAL feed, promotion, and fencing
    # ------------------------------------------------------------------ #
    def wal_feed(
        self,
        from_segment: int,
        from_offset: int,
        *,
        wait: float = 0.0,
        max_bytes: int = 1 << 20,
        want_bootstrap: bool = False,
        subscriber_epoch: int = 0,
    ) -> Dict[str, Any]:
        """One long-poll feed response (handler thread; never blocks writes).

        Reads are point-in-time scans of the segment files, racing the
        writer harmlessly: only fully-written, CRC-valid frames ship, and
        the server fsyncs before acknowledging any batch, so shipped bytes
        are always acknowledged bytes.

        This is also where an old primary learns it has been superseded: a
        subscriber advertising a **higher epoch** than ours proves a
        promotion happened elsewhere, and we fence ourselves before
        answering rather than keep acknowledging doomed writes.
        """
        if self._data_dir is None:
            raise ProtocolError(
                f"tenant {self.name!r} is not durable; there is no WAL to ship"
            )
        subscriber_epoch = int(subscriber_epoch)
        if subscriber_epoch > self.engine.replication_epoch and self.role == "primary":
            self.demote(
                subscriber_epoch,
                f"a subscriber advertised replication epoch {subscriber_epoch}",
            )
        wal_dir = self._wal_dir()
        if want_bootstrap:
            bootstrap = package_bootstrap(self._checkpoint_root())
            end = wal_end_position(wal_dir)
            if bootstrap is not None:
                next_position = (int(bootstrap["wal_start_segment"]), 8)
            else:
                next_position = (1, 8)
            records, lag_bytes = count_lag(wal_dir, next_position, end)
            body = {
                "tenant": self.name,
                "role": self.role,
                "epoch": self.engine.replication_epoch,
                "state_version": self.snapshot.version,
                "status": "ok",
                "frames": [],
                "next": list(next_position),
                "end": list(end),
                "lag_records": records,
                "lag_bytes": lag_bytes,
            }
            if bootstrap is not None:
                body["bootstrap"] = bootstrap
            return body
        deadline = time.monotonic() + max(0.0, min(float(wait), 30.0))
        while True:
            chunk = read_frames(wal_dir, from_segment, from_offset, max_bytes=max_bytes)
            if (
                chunk.frames
                or chunk.status != "ok"
                or self._closed
                or time.monotonic() >= deadline
            ):
                break
            time.sleep(0.05)
        records, lag_bytes = count_lag(wal_dir, chunk.next, chunk.end)
        body = {
            "tenant": self.name,
            "role": self.role,
            "epoch": self.engine.replication_epoch,
            "state_version": self.snapshot.version,
            "status": chunk.status,
            "frames": encode_frames(chunk.frames),
            "next": list(chunk.next),
            "end": list(chunk.end),
            "lag_records": records,
            "lag_bytes": lag_bytes,
        }
        if chunk.status == "pruned":
            # The requested segment fell behind a checkpoint: ship the
            # checkpoint itself so the subscriber can reseed in one round
            # trip instead of discovering it needs to ask.
            bootstrap = package_bootstrap(self._checkpoint_root())
            if bootstrap is not None:
                body["bootstrap"] = bootstrap
        return body

    def promote(self, *, epoch: Optional[int] = None) -> Dict[str, Any]:
        """Flip this tenant writable, fencing whatever it replicated from.

        The worker barrier is the fence point: every shipped batch already
        dequeued applies first, then the engine adopts the bumped epoch,
        opens a fresh WAL segment for appends, and clears read-only — all
        under the lifecycle lock.  A best-effort fencer thread then tells
        the old upstream to demote (the epoch carried on any future
        subscription covers the case where the old primary is dead right
        now and comes back later).
        """
        if self.role == "fenced":
            raise ProtocolError(
                f"tenant {self.name!r} is fenced at epoch "
                f"{self.engine.replication_epoch} ({self.engine.read_only}); "
                f"reseed it as a replica before promoting",
                code="epoch_conflict",
            )
        if self.role == "primary":
            if self.engine.read_only is not None:
                # The recovery-degraded case: satellite of the same switch —
                # an operator re-arming a primary that downgraded itself.
                version = self.worker.submit(
                    Command("promote", run=self.engine.promote_writable)
                ).result(self.sync_timeout)
                return {
                    "tenant": self.name,
                    "role": "primary",
                    "epoch": self.engine.replication_epoch,
                    "promoted": True,
                    "reenabled": True,
                    "version": version,
                }
            return {
                "tenant": self.name,
                "role": "primary",
                "epoch": self.engine.replication_epoch,
                "promoted": False,
                "already_primary": True,
            }
        link = self.link
        upstream_epoch = 0
        if link is not None:
            link.pause()
            upstream_epoch = link.status()["upstream_epoch"]
        try:
            new_epoch = (
                int(epoch)
                if epoch is not None
                else max(self.engine.replication_epoch, upstream_epoch) + 1
            )
            version = self.worker.submit(
                Command(
                    "promote",
                    run=lambda: self.engine.promote_writable(epoch=new_epoch),
                )
            ).result(self.sync_timeout)
        except BaseException:
            if link is not None:
                link.resume()
            raise
        if link is not None:
            link.stop()
            self.link = None
        self.role = "primary"
        upstream = self.replica_of
        self.replica_of = None
        if upstream is not None:
            self._spawn_fencer(upstream, new_epoch)
        return {
            "tenant": self.name,
            "role": "primary",
            "epoch": new_epoch,
            "promoted": True,
            "version": version,
        }

    def demote(self, epoch: int, reason: str) -> Dict[str, Any]:
        """Fence this tenant at ``epoch`` (the losing side of a failover)."""
        epoch = int(epoch)
        local = self.engine.replication_epoch
        if self.role != "primary":
            if epoch < local:
                raise ProtocolError(
                    f"demotion epoch {epoch} is older than tenant "
                    f"{self.name!r}'s epoch {local}",
                    code="epoch_conflict",
                )
            return {
                "tenant": self.name,
                "role": self.role,
                "epoch": max(local, epoch),
                "demoted": False,
            }
        if epoch <= local:
            raise ProtocolError(
                f"demotion epoch {epoch} does not supersede tenant "
                f"{self.name!r}'s epoch {local}",
                code="epoch_conflict",
            )
        self.worker.submit(
            Command("demote", run=lambda: self.engine.fence(epoch, reason))
        ).result(self.sync_timeout)
        self.role = "fenced"
        return {
            "tenant": self.name,
            "role": "fenced",
            "epoch": epoch,
            "demoted": True,
        }

    def _spawn_fencer(self, upstream: str, epoch: int) -> None:
        """Best-effort demotion of the old primary, off the request path."""

        def _fence() -> None:
            import json as _json
            import urllib.error
            import urllib.request

            url = f"{upstream}/v1/{self.name}/demote"
            payload = _json.dumps(
                {"epoch": epoch, "reason": f"superseded by promotion of {self.name!r}"}
            ).encode("utf-8")
            deadline = time.monotonic() + 15.0
            while time.monotonic() < deadline:
                request = urllib.request.Request(
                    url,
                    data=payload,
                    method="POST",
                    headers={"Content-Type": "application/json"},
                )
                try:
                    with urllib.request.urlopen(request, timeout=5.0):
                        return
                except urllib.error.HTTPError as error:
                    if error.code in (400, 409):
                        # Already fenced at (or past) this epoch — done.
                        return
                except Exception:  # noqa: BLE001 - dead upstream is normal
                    pass
                time.sleep(0.5)

        threading.Thread(
            target=_fence, name=f"fencer-{self.name}", daemon=True
        ).start()

    def replication_status(self) -> Dict[str, Any]:
        """Role, epoch, positions, and lag — what ``/replication`` serves."""
        info: Dict[str, Any] = {
            "tenant": self.name,
            "role": self.role,
            "epoch": self.engine.replication_epoch,
            "standby": self.engine.standby,
            "read_only": self.engine.read_only,
            "state_version": self.snapshot.version,
        }
        if self._data_dir is not None:
            info["wal_end"] = list(wal_end_position(self._wal_dir()))
        link = self.link
        if link is not None:
            status = link.status()
            info["link"] = status
            info["replication_lag"] = {
                "records": status["lag_records"],
                "bytes": status["lag_bytes"],
            }
        return info

    # ------------------------------------------------------------------ #
    # Read-side API (snapshot only — never blocks behind a write)
    # ------------------------------------------------------------------ #
    def view_handle(self, name: str):
        try:
            return self.engine[name]
        except EngineError:
            raise ProtocolError(f"no view named {name!r}", code="not_found") from None

    def dataset_record(self, name: str) -> Record:
        record = self.records.get(name)
        if record is None:
            raise ProtocolError(f"no dataset named {name!r}", code="not_found")
        return record

    def stats(self) -> Dict[str, Any]:
        snapshot = self.snapshot
        execution = self.engine.database.execution_report()
        return {
            "tenant": self.name,
            "state_version": snapshot.version,
            "datasets": len(snapshot.datasets),
            "views": len(snapshot.views),
            "queue_depth": self.worker.depth(),
            "queue_capacity": self.worker.capacity,
            "coalesce_bound": self.worker.coalesce,
            "retry_after_hint": self.worker.retry_after(),
            "ingest": self.worker.stats.to_dict(),
            # The execution backend the ingest worker's applies run on, plus
            # per-backend apply counts (see docs/serve.md, "Execution
            # backends under the ingest worker").
            "backend": execution["requested"],
            "backend_applies": execution["applies"],
            "durability": self.engine.durability_report(),
            "replication": self.replication_status(),
        }

    # ------------------------------------------------------------------ #
    def close(self, drain: bool = True) -> None:
        """Drain the ingest queue (optionally), checkpoint, close the engine.

        The SIGTERM path (``drain=True``) on a durable, writable tenant
        cuts a final checkpoint after the queue drains, so the next open
        recovers from the checkpoint instead of replaying the whole WAL
        tail.  Best-effort: a failed checkpoint never blocks shutdown —
        the WAL already holds everything acknowledged.
        """
        if self._closed:
            return
        self._closed = True
        link = self.link
        if link is not None:
            # Before the worker drains: a link mid-ship holds a queued
            # command the drain will complete, and a stopped link enqueues
            # nothing new afterwards.
            link.stop()
        if drain:
            self.worker.drain_and_stop()
        else:
            self.worker.stop_now()
        if (
            drain
            and self.engine.durable
            and self.engine.read_only is None
            and not self.engine.standby
        ):
            try:
                self.engine.checkpoint()
            except Exception:  # noqa: BLE001 - shutdown must proceed
                pass
        # Engine.close is idempotent and safe concurrently with an in-flight
        # apply; exercise and assert exactly that on every shutdown.
        self.engine.close()
        self.engine.close()
        assert self.engine.closed, "Engine.close() must leave the engine closed"


class SessionManager:
    """The named tenants of one server."""

    def __init__(
        self,
        *,
        engine_options: Optional[Dict[str, Any]] = None,
        queue_depth: int = 256,
        coalesce: int = 64,
        auto_create: bool = True,
        sync_timeout: float = 30.0,
        data_dir: Optional[str] = None,
        fsync: Optional[str] = None,
        replica_of: Optional[str] = None,
        poll_wait: float = 5.0,
        poll_interval: float = 0.05,
    ) -> None:
        self._engine_options = dict(engine_options or {})
        self._queue_depth = queue_depth
        self._coalesce = coalesce
        self._auto_create = auto_create
        self._sync_timeout = sync_timeout
        self._data_dir = data_dir
        self._fsync = fsync
        self._replica_of = replica_of.rstrip("/") if replica_of else None
        self._poll_wait = poll_wait
        self._poll_interval = poll_interval
        if self._replica_of is not None and data_dir is None:
            raise ProtocolError("--replica-of requires a durable server (--data-dir)")
        self._sessions: Dict[str, TenantSession] = {}
        self._recovering: set = set()
        # Tenants whose startup recovery raised: name → error summary.
        # They are no longer "recovering" (a later request retries the
        # open and surfaces the error), but /health keeps reporting them.
        self._recovery_failures: Dict[str, str] = {}
        self._lock = threading.Lock()

    @property
    def data_dir(self) -> Optional[str]:
        return self._data_dir

    def _tenant_options(self, name: str) -> Dict[str, Any]:
        options = dict(self._engine_options)
        if self._data_dir is not None:
            # One subdirectory per tenant: WAL + checkpoints never mix.
            options["data_dir"] = os.path.join(self._data_dir, name)
            if self._fsync is not None:
                options.setdefault("fsync", self._fsync)
        return options

    def _create(self, name: str) -> TenantSession:
        with self._lock:
            session = self._sessions.get(name)
            if session is None:
                session = self._sessions[name] = TenantSession(
                    name,
                    engine_options=self._tenant_options(name),
                    queue_depth=self._queue_depth,
                    coalesce=self._coalesce,
                    sync_timeout=self._sync_timeout,
                    replica_of=self._replica_of,
                    poll_wait=self._poll_wait,
                    poll_interval=self._poll_interval,
                )
            return session

    @property
    def replica_of(self) -> Optional[str]:
        return self._replica_of

    def _has_durable_state(self, name: str) -> bool:
        return self._data_dir is not None and os.path.isdir(
            os.path.join(self._data_dir, name)
        )

    def get(self, name: str) -> TenantSession:
        if not name or name in (".", "..") or any(c in name for c in "/\\"):
            raise ProtocolError(f"bad tenant name {name!r}")
        session = self._sessions.get(name)
        if session is not None:
            return session
        if name in self._recovering:
            raise TenantRecoveringError(name)
        # A tenant with durable state on disk is "known" even when
        # auto-creation is off: opening it is a recovery, not a creation.
        if not self._auto_create and not self._has_durable_state(name):
            raise ProtocolError(f"unknown tenant {name!r}", code="not_found")
        return self._create(name)

    def recover_existing(self) -> Tuple[str, ...]:
        """Reopen every tenant with durable state under the data directory.

        Run from the server's background recovery thread at startup.  Every
        pending tenant is marked *recovering* up front, so requests that
        race the warm-up get a 503 + ``Retry-After`` rather than a blocking
        (or, worse, double) replay.
        """
        if self._data_dir is None:
            return ()
        try:
            names = sorted(
                name
                for name in os.listdir(self._data_dir)
                if os.path.isdir(os.path.join(self._data_dir, name))
            )
        except FileNotFoundError:
            return ()
        names = [name for name in names if name not in self._sessions]
        self._recovering.update(names)
        recovered = []
        try:
            for name in names:
                try:
                    self._create(name)
                    recovered.append(name)
                except Exception as error:  # noqa: BLE001 - one damaged
                    # tenant must not kill the recovery thread and strand
                    # every later name in _recovering (a permanent 503).
                    self._recovery_failures[name] = (
                        f"{type(error).__name__}: {error}"
                    )
                finally:
                    self._recovering.discard(name)
        finally:
            # Whatever interrupts the loop, no tenant stays marked
            # recovering forever.
            self._recovering.difference_update(names)
        return tuple(recovered)

    def recovering(self) -> Tuple[str, ...]:
        return tuple(sorted(self._recovering))

    def recovery_failures(self) -> Dict[str, str]:
        """Tenants whose startup recovery raised, with the error summary."""
        return dict(self._recovery_failures)

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._sessions))

    def stats(self) -> Dict[str, Any]:
        return {name: self._sessions[name].stats() for name in self.names()}

    def replication_summary(self) -> Dict[str, Any]:
        """Compact per-tenant role/epoch/lag map (what ``/health`` carries)."""
        summary: Dict[str, Any] = {}
        for name in self.names():
            session = self._sessions.get(name)
            if session is None:
                continue
            status = session.replication_status()
            entry: Dict[str, Any] = {
                "role": status["role"],
                "epoch": status["epoch"],
            }
            lag = status.get("replication_lag")
            if lag is not None:
                entry["lag_records"] = lag["records"]
                entry["lag_bytes"] = lag["bytes"]
            summary[name] = entry
        return summary

    def close_all(self, drain: bool = True) -> None:
        with self._lock:
            sessions = list(self._sessions.values())
        for session in sessions:
            session.close(drain=drain)
