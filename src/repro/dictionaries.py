"""Label-dictionary values: the ``L ↦ Bag(B)`` maps of Section 5.2.

A dictionary associates labels with bag values.  Two flavours exist:

* :class:`MaterializedDict` — a finite mapping with an explicit support set.
  This is the representation the IVM engine materializes (after domain
  maintenance) and the representation of shredded *input* contexts.
* :class:`IntensionalDict` — the paper's ``[(ι, Π) ↦ e]``: an a-priori
  infinite-domain dictionary defined by a static index and a lookup closure.
  Looking up ``⟨ι', ε⟩`` evaluates the closure on ``ε`` when ``ι' == ι`` and
  returns the empty bag otherwise.

Two combination operators are provided, mirroring the paper exactly:

* **label union ``∪``** (:meth:`DictValue.label_union`) — supports merge;
  if a label is defined on both sides the definitions must agree, otherwise a
  :class:`~repro.errors.DictionaryConflictError` is raised.  Label union can
  never modify a definition.
* **bag addition ``⊎``** (:meth:`DictValue.add`) — pointwise union of the
  entry bags.  This is the only way to *change* a label's definition and is
  how deep updates are applied (Appendix C.2 contrasts the two).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Optional, Tuple

from repro.bag.bag import Bag, EMPTY_BAG
from repro.errors import DictionaryConflictError
from repro.labels import Label

__all__ = [
    "DictValue",
    "MaterializedDict",
    "IntensionalDict",
    "CombinedDict",
    "EMPTY_DICT",
]


class DictValue:
    """Abstract base class of dictionary values."""

    def lookup(self, label: Label) -> Bag:
        """Return the bag associated with ``label`` (empty if undefined)."""
        raise NotImplementedError

    def defines(self, label: Label) -> bool:
        """True iff ``label`` belongs to this dictionary's support."""
        raise NotImplementedError

    def support(self) -> Optional[FrozenSet[Label]]:
        """The (finite) support set, or ``None`` for intensional dictionaries."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Combination operators
    # ------------------------------------------------------------------ #
    def label_union(self, other: "DictValue") -> "DictValue":
        """Label union ``self ∪ other`` (definitions must agree on overlaps)."""
        if isinstance(self, MaterializedDict) and isinstance(other, MaterializedDict):
            return _materialized_label_union(self, other)
        return CombinedDict((self, other), mode="union")

    def add(self, other: "DictValue") -> "DictValue":
        """Pointwise bag addition ``self ⊎ other``."""
        if isinstance(self, MaterializedDict) and isinstance(other, MaterializedDict):
            return _materialized_add(self, other)
        return CombinedDict((self, other), mode="add")

    def materialize(self, labels: Iterable[Label]) -> "MaterializedDict":
        """Materialize the definitions of the given labels into a finite dict."""
        entries: Dict[Label, Bag] = {}
        for label in labels:
            entries[label] = self.lookup(label)
        return MaterializedDict(entries)


class MaterializedDict(DictValue):
    """A finite dictionary with explicit support.

    The support distinguishes an absent definition from a definition mapping
    its label to the empty bag (``supp([]) = ∅`` versus
    ``supp([l ↦ ∅]) = {l}``), exactly as required by Section 5.2.
    """

    __slots__ = ("_entries",)

    def __init__(self, entries: Optional[Dict[Label, Bag]] = None) -> None:
        self._entries: Dict[Label, Bag] = dict(entries or {})

    @classmethod
    def _adopt(cls, entries: Dict[Label, Bag]) -> "MaterializedDict":
        """Internal: wrap ``entries`` without copying.

        The caller transfers ownership — it must copy-on-write before any
        further mutation of ``entries`` (see
        :class:`repro.storage.store.DictionaryStore`), exactly like
        ``Bag._from_clean_dict``.
        """
        dictionary = cls.__new__(cls)
        dictionary._entries = entries
        return dictionary

    # Queries ------------------------------------------------------------
    def lookup(self, label: Label) -> Bag:
        return self._entries.get(label, EMPTY_BAG)

    def defines(self, label: Label) -> bool:
        return label in self._entries

    def support(self) -> FrozenSet[Label]:
        return frozenset(self._entries)

    def items(self) -> Iterable[Tuple[Label, Bag]]:
        return self._entries.items()

    def __len__(self) -> int:
        return len(self._entries)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MaterializedDict):
            return NotImplemented
        return self._entries == other._entries

    def __hash__(self) -> int:
        return hash(frozenset(self._entries.items()))

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{label.render()} ↦ {bag!r}" for label, bag in sorted(
                self._entries.items(), key=lambda item: item[0].render()
            )
        )
        return "[" + parts + "]"

    # Functional updates -------------------------------------------------
    def with_entry(self, label: Label, bag: Bag) -> "MaterializedDict":
        """Return a copy with ``label`` (re)defined to ``bag``."""
        entries = dict(self._entries)
        entries[label] = bag
        return MaterializedDict(entries)

    def without_entry(self, label: Label) -> "MaterializedDict":
        """Return a copy with ``label`` removed from the support."""
        entries = dict(self._entries)
        entries.pop(label, None)
        return MaterializedDict(entries)


class IntensionalDict(DictValue):
    """The paper's ``[(ι, Π) ↦ e]`` with a lookup closure.

    ``body_lookup`` receives the tuple of label values (the ``ε`` packed in
    the label) and must return the bag that the defining expression evaluates
    to under that assignment.  The closure is constructed by the NRC
    evaluator so that this module stays independent of the AST.
    """

    __slots__ = ("iota", "_body_lookup")

    def __init__(self, iota: str, body_lookup: Callable[[Tuple], Bag]) -> None:
        self.iota = iota
        self._body_lookup = body_lookup

    def lookup(self, label: Label) -> Bag:
        if label.iota != self.iota:
            return EMPTY_BAG
        return self._body_lookup(label.values)

    def defines(self, label: Label) -> bool:
        return label.iota == self.iota

    def support(self) -> None:
        return None

    def __repr__(self) -> str:
        return f"[({self.iota}, Π) ↦ …]"


class CombinedDict(DictValue):
    """Lazy combination of dictionaries (label union or pointwise addition).

    Used whenever at least one operand is intensional, so that supports cannot
    be enumerated eagerly.  Conflict detection for label union happens at
    lookup time, exactly when the paper's semantics would flag the ``error``.
    """

    __slots__ = ("parts", "mode")

    def __init__(self, parts: Tuple[DictValue, ...], mode: str) -> None:
        if mode not in ("union", "add"):
            raise ValueError("mode must be 'union' or 'add'")
        self.parts = parts
        self.mode = mode

    def lookup(self, label: Label) -> Bag:
        if self.mode == "add":
            result = EMPTY_BAG
            for part in self.parts:
                result = result.union(part.lookup(label))
            return result
        defined = [part.lookup(label) for part in self.parts if part.defines(label)]
        if not defined:
            return EMPTY_BAG
        first = defined[0]
        for other in defined[1:]:
            if other != first:
                raise DictionaryConflictError(
                    f"label union: conflicting definitions for {label.render()}"
                )
        return first

    def defines(self, label: Label) -> bool:
        return any(part.defines(label) for part in self.parts)

    def support(self) -> Optional[FrozenSet[Label]]:
        supports = [part.support() for part in self.parts]
        if any(support is None for support in supports):
            return None
        result: FrozenSet[Label] = frozenset()
        for support in supports:
            result |= support  # type: ignore[operator]
        return result

    def __repr__(self) -> str:
        operator = " ∪ " if self.mode == "union" else " ⊎ "
        return "(" + operator.join(repr(part) for part in self.parts) + ")"


def _materialized_label_union(
    left: MaterializedDict, right: MaterializedDict
) -> MaterializedDict:
    """Eager label union of two finite dictionaries with conflict detection."""
    entries: Dict[Label, Bag] = dict(left.items())
    for label, bag in right.items():
        if label in entries:
            if entries[label] != bag:
                raise DictionaryConflictError(
                    f"label union: conflicting definitions for {label.render()}"
                )
        else:
            entries[label] = bag
    return MaterializedDict(entries)


def _materialized_add(left: MaterializedDict, right: MaterializedDict) -> MaterializedDict:
    """Eager pointwise bag addition of two finite dictionaries."""
    entries: Dict[Label, Bag] = dict(left.items())
    for label, bag in right.items():
        if label in entries:
            entries[label] = entries[label].union(bag)
        else:
            entries[label] = bag
    return MaterializedDict(entries)


#: The empty dictionary ``[]`` (empty support).
EMPTY_DICT = MaterializedDict({})
