"""Sharded relation storage: partitions, composite snapshots, index families.

A :class:`~repro.storage.store.RelationStore` can be partitioned into ``N``
shards, each owning one :class:`~repro.bag.builder.BagBuilder` and one
:class:`~repro.storage.index.HashIndex` per registered key.  Elements are
routed to shards by a stable hash of the store's **primary index key** (the
first key registered against the store; whole-element hash until one exists),
which buys three things:

* **O(|Δ|/N) maintenance units** — a delta is partitioned once and each
  shard folds only its own pairs into its builder and indexes, so the units
  are independent and can run concurrently;
* **per-shard copy-on-write** — a reader that retains a snapshot across a
  write (a serving session holding :meth:`~repro.engine.Engine.relation`
  or a consistent evaluation environment) forces the next delta to un-share
  only the *touched* shards: the write path copies ``O(touched · n/N)``
  entries instead of the whole ``O(n)`` dict;
* **single-shard probe routing** — because equal primary keys land in the
  same shard, a compiled hash-join probe on the primary key consults exactly
  one shard's index (:class:`ShardIndexFamily.get`); secondary-key probes
  merge the (disjoint) buckets of every shard.

The environment-facing snapshot of a sharded store is a :class:`ShardedBag`:
an immutable :class:`~repro.bag.bag.Bag` assembled from the per-shard frozen
snapshots in O(N).  It answers point queries and iteration without copying;
only structural operations (``union``, equality, hashing — the interpreter's
territory, already O(n)) materialize the merged dict, lazily and at most once.

Setting ``REPRO_SHARDS=1`` (or :func:`forced_shards`) reproduces the
pre-sharding single-dict store bit-for-bit: stores created under it keep one
shard, hand out plain :class:`~repro.bag.bag.Bag` snapshots and raw
:class:`~repro.storage.index.HashIndex` objects.

Shard assignment uses Python's built-in ``hash`` on the (interned) key
tuple: deterministic for a given key within a process, which is all routing
needs — results are shard-count independent, only the per-shard statistics
depend on the assignment.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.bag.bag import Bag
from repro.storage.index import HashIndex, Paths

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "REPRO_SHARDS",
    "SMALL_RELATION_SHARD_THRESHOLD",
    "ShardIndexFamily",
    "ShardedBag",
    "forced_shards",
    "resolve_shard_count",
    "shards_pinned",
]

#: Environment variable fixing the shard count of newly created stores.
#: ``REPRO_SHARDS=1`` is the escape hatch reproducing the pre-sharding
#: single-dict behavior.
REPRO_SHARDS = "REPRO_SHARDS"

#: Shard count used when neither the constructor nor the environment pins one.
DEFAULT_SHARD_COUNT = 8

#: Relations registered with fewer distinct rows than this default to a
#: single shard when nothing pins a count.  The committed
#: ``benchmarks/results/shard_scale.json`` size sweep puts the crossover
#: where sharding overhead (routing + composite assembly) beats its COW
#: benefit at roughly n=500: the n=500 row shows only a 1.26× gain against
#: a 3.06× gain at n=2000, and the view sweep shows single-view engines
#: losing outright.  Small lookup relations are exactly the
#: read-rarely/write-rarely case the docs told users to hand-tune; the
#: registration path now applies the rule itself.
SMALL_RELATION_SHARD_THRESHOLD = 500


def shards_pinned(shards: Optional[int] = None) -> bool:
    """True when an explicit argument or ``REPRO_SHARDS`` pins the count.

    Adaptive defaults (the small-relation rule above) apply only when
    nothing is pinned: a user or test that forces a count gets exactly that
    count, as before.
    """
    return shards is not None or bool(os.environ.get(REPRO_SHARDS))


def resolve_shard_count(shards: Optional[int] = None) -> int:
    """The effective shard count: explicit argument > ``REPRO_SHARDS`` > default."""
    if shards is not None:
        if not isinstance(shards, int) or shards < 1:
            raise ValueError(f"shard count must be a positive int, got {shards!r}")
        return shards
    raw = os.environ.get(REPRO_SHARDS)
    if raw:
        try:
            value = int(raw)
        except ValueError:
            raise ValueError(f"{REPRO_SHARDS} must be an integer, got {raw!r}") from None
        if value < 1:
            raise ValueError(f"{REPRO_SHARDS} must be >= 1, got {value}")
        return value
    return DEFAULT_SHARD_COUNT


@contextmanager
def forced_shards(count: Optional[int]) -> Iterator[None]:
    """Pin (or, with ``None``, un-pin) the shard count of stores created inside.

    Mirrors :func:`repro.storage.store.forced_no_index`: the hatch applies
    at *resolution* time — a standalone :class:`RelationStore` resolves when
    constructed, a :class:`~repro.ivm.database.Database` (and therefore an
    :class:`~repro.engine.Engine`) once at its own construction for all of
    its stores.  Stores already built keep their partitioning.
    """
    saved = os.environ.get(REPRO_SHARDS)
    try:
        if count is None:
            os.environ.pop(REPRO_SHARDS, None)
        else:
            os.environ[REPRO_SHARDS] = str(int(count))
        yield
    finally:
        if saved is None:
            os.environ.pop(REPRO_SHARDS, None)
        else:
            os.environ[REPRO_SHARDS] = saved


class ShardedBag(Bag):
    """An immutable bag assembled from per-shard snapshot bags, without copying.

    Supports are disjoint by construction (each element lives in exactly the
    shard its routing hash names), so point queries, iteration and size
    accounting delegate to the shards directly.  Structural operations
    inherited from :class:`~repro.bag.bag.Bag` (``union``, ``flat_map``,
    equality, hashing, …) read ``self._data``, which here is a *property*
    shadowing the base class's slot: it merges the shard dicts lazily, at
    most once per snapshot.  The hot compiled/indexed paths never touch it —
    they see this object only as an identity token plus an iteration source.
    """

    __slots__ = ("_shard_bags", "_merged", "_merged_bag")

    def __init__(self, *args: Any, **kwargs: Any) -> None:  # pragma: no cover
        raise TypeError("ShardedBag is built by RelationStore; use ShardedBag.of")

    @classmethod
    def of(cls, shard_bags: Tuple[Bag, ...]) -> "ShardedBag":
        composite = object.__new__(cls)
        composite._shard_bags = shard_bags
        composite._merged = None
        composite._merged_bag = None
        composite._hash = None
        return composite

    # -------------------------------------------------------------- #
    # The lazily merged dict behind inherited structural operations.
    # -------------------------------------------------------------- #
    @property
    def _data(self) -> Dict[Any, int]:  # type: ignore[override]
        merged = self._merged
        if merged is None:
            merged = {}
            for shard in self._shard_bags:
                merged.update(shard._data)
            self._merged = merged
        return merged

    def merged(self) -> Bag:
        """The merged contents as one plain :class:`Bag`, materialized once.

        Structural operations used to hand each caller a *fresh* plain bag
        over the (memoized) merged dict — so two identical calls produced
        two result objects and identity-keyed caches (the index provider's
        snapshot-correspondence check, compiled build-side memos) never hit.
        The merged view is now a memoized sibling snapshot: repeated calls
        return the same object, sharing the merged dict with this bag.
        """
        bag = self._merged_bag
        if bag is None:
            bag = self._merged_bag = Bag._from_clean_dict(self._data)
        return bag

    # -------------------------------------------------------------- #
    # Structural group operations: delegate to the memoized merged bag,
    # so calling the same operation twice reuses one materialization
    # (and ``x.union(EMPTY)``-style fast paths return a stable object).
    # -------------------------------------------------------------- #
    def union(self, other: Bag) -> Bag:
        if isinstance(other, Bag) and not other._data:
            return self  # identity fast path, as before — no merge forced
        return self.merged().union(other)

    def difference(self, other: Bag) -> Bag:
        if isinstance(other, Bag) and not other._data:
            return self
        return self.merged().difference(other)

    def scale(self, factor: int) -> Bag:
        if factor == 1:
            return self
        return self.merged().scale(factor)

    # -------------------------------------------------------------- #
    # Pickling: preserve the shard structure (the whole point of a
    # sendable shard snapshot); per-shard bags re-merge lazily on the
    # receiving side.  The default slot pickling would trip over the
    # ``_data`` property (no setter), so the reduction is explicit.
    # -------------------------------------------------------------- #
    def __reduce__(self):
        return (ShardedBag.of, (self._shard_bags,))

    # -------------------------------------------------------------- #
    # Point queries and iteration: shard-direct, never merge.
    # -------------------------------------------------------------- #
    @property
    def shard_bags(self) -> Tuple[Bag, ...]:
        return self._shard_bags

    def shard_count(self) -> int:
        return len(self._shard_bags)

    def multiplicity(self, element: Any) -> int:
        for shard in self._shard_bags:
            multiplicity = shard._data.get(element)
            if multiplicity is not None:
                return multiplicity
        return 0

    def __contains__(self, element: Any) -> bool:
        return any(element in shard._data for shard in self._shard_bags)

    def elements(self) -> Iterator[Any]:
        for shard in self._shard_bags:
            yield from shard._data

    def __iter__(self) -> Iterator[Any]:
        return self.elements()

    def items(self) -> Iterator[Tuple[Any, int]]:
        for shard in self._shard_bags:
            yield from shard._data.items()

    def expand(self) -> Iterator[Any]:
        for element, multiplicity in self.items():
            for _ in range(max(multiplicity, 0)):
                yield element

    def __len__(self) -> int:
        return sum(len(shard._data) for shard in self._shard_bags)

    def distinct_size(self) -> int:
        return len(self)

    def is_empty(self) -> bool:
        return all(not shard._data for shard in self._shard_bags)

    def total_multiplicity(self) -> int:
        return sum(shard.total_multiplicity() for shard in self._shard_bags)

    def cardinality(self) -> int:
        return sum(shard.cardinality() for shard in self._shard_bags)

    def has_negative(self) -> bool:
        return any(shard.has_negative() for shard in self._shard_bags)

    def max_multiplicity(self) -> int:
        if self.is_empty():
            return 0
        return max(shard.max_multiplicity() for shard in self._shard_bags if shard._data)


class ShardIndexFamily:
    """One registered key over a sharded store: one ``HashIndex`` per shard.

    This is the object :meth:`RelationStore.ensure_index` returns and the
    :class:`~repro.storage.store.IndexProvider` serves for multi-shard
    stores; it implements the same probe contract as a raw
    :class:`~repro.storage.index.HashIndex` (``get``/``__bool__``/
    ``poisoned``/``version``/``hits``/``rebuilds``), so the compiled
    pipeline probes both interchangeably.

    ``routed`` families cover the store's primary (routing) key: equal keys
    co-locate, so :meth:`get` consults **only the owning shard** —
    single-shard probe routing.  Secondary families merge the per-shard
    buckets, which are disjoint because elements are partitioned.

    Poisoning is tracked per shard: an unhashable key poisons the owning
    shard's index only, and :meth:`revalidate` rebuilds just the poisoned
    shards.  A family with *any* poisoned shard declines probes outright
    (``poisoned`` is true): a poisoned shard means some element's key cannot
    be matched faithfully by hashing, and the interpreter-faithful answer is
    the compiled pipeline's own fallback over the whole relation, exactly as
    with an unsharded poisoned index.
    """

    __slots__ = (
        "paths",
        "shard_indexes",
        "routed",
        "hits",
        "rebuilds",
        "deltas_applied",
        "version",
        "_poisoned",
    )

    def __init__(
        self,
        paths: Paths,
        shard_indexes: Tuple[HashIndex, ...],
        routed: bool,
        version: int,
    ) -> None:
        self.paths = paths
        self.shard_indexes = shard_indexes
        self.routed = routed
        #: Family-level counters, mirroring HashIndex's: probes answered,
        #: full (re)builds + per-evaluation fallbacks, deltas folded in.
        self.hits = 0
        self.rebuilds = 1  # construction builds every shard once
        self.deltas_applied = 0
        self.version = version
        self._poisoned = any(index.poisoned for index in shard_indexes)

    # -------------------------------------------------------------- #
    # Probe contract (duck-typed with HashIndex)
    # -------------------------------------------------------------- #
    @property
    def poisoned(self) -> bool:
        return self._poisoned

    def refresh_poison(self) -> bool:
        self._poisoned = any(index.poisoned for index in self.shard_indexes)
        return self._poisoned

    def get(self, key: Tuple[Any, ...]):
        """Bucket for ``key`` as ``(element, multiplicity)`` pairs, or ``None``.

        Primary-key probes touch exactly the owning shard; secondary-key
        probes concatenate the per-shard buckets (disjoint by partitioning).
        """
        self.hits += 1
        indexes = self.shard_indexes
        if self.routed:
            return indexes[hash(key) % len(indexes)].bucket_of(key)
        merged: Optional[List[Tuple[Any, int]]] = None
        for index in indexes:
            bucket = index.bucket_of(key)
            if bucket is not None:
                if merged is None:
                    merged = list(bucket)
                else:
                    merged.extend(bucket)
        return merged

    def __bool__(self) -> bool:
        return any(index._buckets for index in self.shard_indexes)

    def __len__(self) -> int:
        """Number of distinct keys across shards.

        Routed families partition keys, so the per-shard counts sum exactly;
        secondary families may hold the same key in several shards and the
        distinct set is computed by union (introspection-only path).
        """
        if self.routed:
            return sum(len(index) for index in self.shard_indexes)
        keys = set()
        for index in self.shard_indexes:
            keys.update(index._buckets)
        return len(keys)

    # -------------------------------------------------------------- #
    # Maintenance (driven by RelationStore)
    # -------------------------------------------------------------- #
    def revalidate(self, shard_bags: Tuple[Bag, ...], version: int) -> None:
        """Rebuild **only the poisoned shards** from their current bags."""
        for index, bag in zip(self.shard_indexes, shard_bags):
            if index.poisoned:
                index.rebuild(bag)
            index.version = version
        self.version = version
        self.refresh_poison()

    # -------------------------------------------------------------- #
    # Introspection
    # -------------------------------------------------------------- #
    def entry_count(self) -> int:
        return sum(index.entry_count() for index in self.shard_indexes)

    def describe(self) -> Dict[str, Any]:
        return {
            "key_paths": [list(path) for path in self.paths],
            "distinct_keys": len(self),
            "entries": self.entry_count(),
            "hits": self.hits,
            "rebuilds": self.rebuilds,
            "deltas_applied": self.deltas_applied,
            "poisoned": self._poisoned,
            "version": self.version,
            "shards": len(self.shard_indexes),
            "routed": self.routed,
            "poisoned_shards": [
                position
                for position, index in enumerate(self.shard_indexes)
                if index.poisoned
            ],
            "per_shard": [
                {
                    "shard": position,
                    "distinct_keys": len(index),
                    "entries": index.entry_count(),
                    "deltas_applied": index.deltas_applied,
                    "rebuilds": index.rebuilds,
                    "poisoned": index.poisoned,
                }
                for position, index in enumerate(self.shard_indexes)
            ],
        }

    def __repr__(self) -> str:
        state = "poisoned" if self._poisoned else f"{self.entry_count()} entries"
        mode = "routed" if self.routed else "merged"
        return (
            f"ShardIndexFamily(paths={self.paths}, {len(self.shard_indexes)} shards, "
            f"{mode}, {state}, hits={self.hits})"
        )
