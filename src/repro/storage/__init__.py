"""Persistent storage layer: relation stores and incrementally-maintained
join indexes.

The lifecycle is *register → maintain → vacuum*: the compiled delta pipelines
register the join atoms they probe at view-registration time
(:meth:`repro.ivm.database.Database.register_index_requirements`), every
update folds its delta into the affected indexes in ``O(|Δ|)``
(:meth:`RelationStore.apply_delta`), and :meth:`repro.engine.Engine.vacuum`
keeps the derived state tight.  See ``docs/api.md`` ("Storage layer") for the
full contract, including when the pipeline falls back to per-evaluation
builds.
"""

from repro.bag.builder import (
    REPRO_NO_BUILDER,
    BagBuilder,
    forced_full_copy,
    transients_enabled,
)
from repro.storage.index import HashIndex, IndexKeyError, index_key_of
from repro.storage.results import ResultStore
from repro.storage.shards import (
    DEFAULT_SHARD_COUNT,
    REPRO_SHARDS,
    ShardIndexFamily,
    ShardedBag,
    forced_shards,
    resolve_shard_count,
)
from repro.storage.store import (
    REPRO_NO_INDEX,
    DictionaryStore,
    IndexProvider,
    RelationStore,
    StorageManager,
    forced_no_index,
    persistent_indexes_enabled,
)

__all__ = [
    "DEFAULT_SHARD_COUNT",
    "REPRO_NO_BUILDER",
    "REPRO_NO_INDEX",
    "REPRO_SHARDS",
    "BagBuilder",
    "DictionaryStore",
    "HashIndex",
    "IndexKeyError",
    "IndexProvider",
    "RelationStore",
    "ResultStore",
    "ShardIndexFamily",
    "ShardedBag",
    "StorageManager",
    "forced_full_copy",
    "forced_no_index",
    "forced_shards",
    "index_key_of",
    "persistent_indexes_enabled",
    "resolve_shard_count",
    "transients_enabled",
]
