"""Persistent storage layer: relation stores and incrementally-maintained
join indexes.

The lifecycle is *register → maintain → vacuum*: the compiled delta pipelines
register the join atoms they probe at view-registration time
(:meth:`repro.ivm.database.Database.register_index_requirements`), every
update folds its delta into the affected indexes in ``O(|Δ|)``
(:meth:`RelationStore.apply_delta`), and :meth:`repro.engine.Engine.vacuum`
keeps the derived state tight.  See ``docs/api.md`` ("Storage layer") for the
full contract, including when the pipeline falls back to per-evaluation
builds.
"""

from repro.bag.builder import (
    REPRO_NO_BUILDER,
    BagBuilder,
    forced_full_copy,
    transients_enabled,
)
from repro.storage.index import HashIndex, IndexKeyError, index_key_of
from repro.storage.store import (
    REPRO_NO_INDEX,
    DictionaryStore,
    IndexProvider,
    RelationStore,
    StorageManager,
    forced_no_index,
    persistent_indexes_enabled,
)

__all__ = [
    "REPRO_NO_BUILDER",
    "REPRO_NO_INDEX",
    "BagBuilder",
    "DictionaryStore",
    "HashIndex",
    "IndexKeyError",
    "IndexProvider",
    "RelationStore",
    "StorageManager",
    "forced_full_copy",
    "forced_no_index",
    "index_key_of",
    "persistent_indexes_enabled",
    "transients_enabled",
]
