"""Persistent secondary hash indexes, maintained incrementally from deltas.

A :class:`HashIndex` materializes the hash-join build side the compiled
pipeline (:mod:`repro.nrc.compile`) would otherwise rebuild on every
evaluation: a mapping from projection-key tuples to the bag elements that
carry them, with multiplicities.  The crucial property is that
:meth:`HashIndex.apply` walks **only the delta** — after an update of size
``d`` the index is current again in ``O(d)`` work, never ``O(|relation|)``,
which is exactly the ``Q_new = Q_old ⊎ ΔQ`` amortization the delta machinery
already provides for view contents and shredded dictionaries.

Hashing is sound only for keys on which ``==`` coincides with dictionary-key
matching — self-equal base values, the same rule the compiler's
per-evaluation build enforces.  An element whose key projection fails, is
non-base, or is not self-equal (``NaN``) *poisons* the index: it stops
answering probes (:meth:`buckets` and :meth:`get` return ``None``) and the
compiled pipeline falls back to its per-evaluation build, whose own
unhashable-key handling degrades to the interpreter-faithful nested loop.
Poisoning is therefore never a correctness concern, only a performance one;
:meth:`rebuild` re-validates from a full bag once the offending elements are
deleted — :meth:`repro.engine.Engine.vacuum` (via
``RelationStore.vacuum``/``Database.vacuum_storage``) is the caller that
performs this recovery, and ``RelationStore.replace`` rebuilds wholesale.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

from repro.bag.bag import Bag
from repro.bag.values import intern_key, is_hashable_key

__all__ = ["HashIndex", "IndexKeyError", "index_key_of"]

#: One key part per equality atom: the projection path into the element.
Paths = Tuple[Tuple[int, ...], ...]


class IndexKeyError(Exception):
    """An element's key cannot be maintained by hashing (poisons the index)."""


def index_key_of(element: Any, paths: Paths) -> Tuple[Any, ...]:
    """The index key of ``element``: one projected value per path.

    Raises :class:`IndexKeyError` when a projection does not apply or the
    projected value is not faithfully hashable.  The returned tuple is
    interned (:func:`repro.bag.values.intern_key`): recurring keys resolve
    to one canonical object, so bucket lookups hit the identity fast path
    and the per-update re-hashing of hot keys stops dominating profiles.
    """
    parts = []
    for path in paths:
        value = element
        for index in path:
            if not isinstance(value, tuple) or index >= len(value):
                raise IndexKeyError(f"projection .{index} fails on {value!r}")
            value = value[index]
        if not is_hashable_key(value):
            raise IndexKeyError(f"unhashable key part {value!r}")
        parts.append(value)
    return intern_key(tuple(parts))


class HashIndex:
    """An incrementally-maintained secondary index over one relation's bag.

    ``paths`` is the tuple of projection paths forming the key (in probe
    order).  Buckets map each key to an ``element → multiplicity`` dict;
    entries whose multiplicities cancel to zero are dropped, and so are
    buckets that empty out, mirroring :class:`~repro.bag.bag.Bag`'s
    normalization.
    """

    __slots__ = (
        "paths",
        "_buckets",
        "_poisoned",
        "hits",
        "rebuilds",
        "deltas_applied",
        "version",
    )

    def __init__(self, paths: Paths, bag: Optional[Bag] = None) -> None:
        self.paths: Paths = tuple(tuple(path) for path in paths)
        self._buckets: Dict[Tuple[Any, ...], Dict[Any, int]] = {}
        self._poisoned = False
        #: The owning store's version counter at the last maintenance pass.
        #: The provider serves this index only while it matches the store's
        #: current version — the version-keyed freshness check that replaced
        #: the old reliance on one immutable bag object per store state.
        self.version = 0
        #: Probes answered by this index — including empty-bucket answers:
        #: "no matching element" is an answer the index served, sparing the
        #: same per-evaluation rebuild a non-empty one would have.
        self.hits = 0
        #: Full rebuilds: construction, :meth:`rebuild` calls, and
        #: per-evaluation fallbacks recorded by the pipeline when this index
        #: could not answer (poisoned or stale).
        self.rebuilds = 0
        #: Deltas folded in through :meth:`apply`.
        self.deltas_applied = 0
        if bag is not None:
            self.rebuild(bag)

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def rebuild(self, bag: Bag) -> None:
        """Reconstruct the index from a full bag (counts as one rebuild)."""
        self.rebuilds += 1
        self._buckets = {}
        self._poisoned = False
        self._fold(bag.items())

    def apply(self, delta: Bag) -> None:
        """Fold one delta in — walks only the delta, never the base bag."""
        if self._poisoned:
            return
        self.deltas_applied += 1
        self._fold(delta.items())

    def apply_pairs(self, pairs: Iterable[Tuple[Any, int]]) -> None:
        """Fold raw ``(element, multiplicity)`` pairs in (one delta application).

        The sharded store partitions a delta once and hands each shard only
        its own pairs; wrapping them back into a :class:`Bag` per shard would
        tax the O(|Δ|/N) units with needless allocation.
        """
        if self._poisoned:
            return
        self.deltas_applied += 1
        self._fold(pairs)

    def _fold(self, pairs: Iterable[Tuple[Any, int]]) -> None:
        buckets = self._buckets
        try:
            for element, multiplicity in pairs:
                key = index_key_of(element, self.paths)
                bucket = buckets.get(key)
                if bucket is None:
                    bucket = buckets[key] = {}
                updated = bucket.get(element, 0) + multiplicity
                if updated == 0:
                    bucket.pop(element, None)
                    if not bucket:
                        buckets.pop(key, None)
                else:
                    bucket[element] = updated
        except IndexKeyError:
            self.poison()

    def apply_keyed_pairs(
        self, triples: Iterable[Tuple[Tuple[Any, ...], Any, int]]
    ) -> None:
        """Fold ``(key, element, multiplicity)`` triples whose keys are
        already computed (one delta application).

        This is the fold-back half of shard ownership transfer: a worker
        that owns the shard computes ``index_key_of`` per delta element —
        the projection/validation work that dominates index maintenance —
        and ships the keyed triples home, so the parent only performs the
        dict folds.  Counter semantics match :meth:`apply_pairs` exactly
        (a poisoned slice ignores deltas without counting them).
        """
        if self._poisoned:
            return
        self.deltas_applied += 1
        buckets = self._buckets
        for key, element, multiplicity in triples:
            key = intern_key(key)
            bucket = buckets.get(key)
            if bucket is None:
                bucket = buckets[key] = {}
            updated = bucket.get(element, 0) + multiplicity
            if updated == 0:
                bucket.pop(element, None)
                if not bucket:
                    buckets.pop(key, None)
            else:
                bucket[element] = updated

    def poison(self) -> None:
        """Stop answering probes until the next :meth:`rebuild`."""
        self._poisoned = True
        self._buckets = {}

    # ------------------------------------------------------------------ #
    # Shard ownership transfer (sendable execution state)
    # ------------------------------------------------------------------ #
    def export_shard(self) -> Dict[str, Any]:
        """A picklable snapshot of this index slice's full state.

        ``adopt_shard`` on the receiving side installs it without
        recomputing a single projection key — ownership of the slice moves
        wholesale.  Buckets are shallow-copied so later maintenance on
        either side never aliases the other's dicts.
        """
        return {
            "paths": self.paths,
            "buckets": {key: dict(bucket) for key, bucket in self._buckets.items()},
            "poisoned": self._poisoned,
            "hits": self.hits,
            "rebuilds": self.rebuilds,
            "deltas_applied": self.deltas_applied,
            "version": self.version,
        }

    def adopt_shard(self, state: Dict[str, Any]) -> None:
        """Install a state previously produced by :meth:`export_shard`."""
        if tuple(tuple(path) for path in state["paths"]) != self.paths:
            raise ValueError(
                f"cannot adopt shard state keyed by {state['paths']!r} "
                f"into an index keyed by {self.paths!r}"
            )
        self._buckets = state["buckets"]
        self._poisoned = state["poisoned"]
        self.hits = state["hits"]
        self.rebuilds = state["rebuilds"]
        self.deltas_applied = state["deltas_applied"]
        self.version = state["version"]

    # ------------------------------------------------------------------ #
    # Pickling (slots classes need explicit state methods)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> Dict[str, Any]:
        return self.export_shard()

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.paths = tuple(tuple(path) for path in state["paths"])
        self._buckets = state["buckets"]
        self._poisoned = state["poisoned"]
        self.hits = state["hits"]
        self.rebuilds = state["rebuilds"]
        self.deltas_applied = state["deltas_applied"]
        self.version = state["version"]

    # ------------------------------------------------------------------ #
    # Probing (the hash-join contract of repro.nrc.compile)
    # ------------------------------------------------------------------ #
    @property
    def poisoned(self) -> bool:
        return self._poisoned

    def get(self, key: Tuple[Any, ...]):
        """Bucket for ``key`` as ``(element, multiplicity)`` pairs, or ``None``.

        The same shape as the per-evaluation build's buckets, so the
        compiled hash-join probes both interchangeably.  Every call counts
        as a hit, ``None`` answers included (see :attr:`hits`).
        """
        self.hits += 1
        bucket = self._buckets.get(key)
        if not bucket:
            return None
        return bucket.items()

    def bucket_of(self, key: Tuple[Any, ...]):
        """Like :meth:`get` but without hit accounting.

        Used by :class:`~repro.storage.shards.ShardIndexFamily`, which
        counts one family-level hit per probe regardless of how many shard
        buckets answering it touches.
        """
        bucket = self._buckets.get(key)
        if not bucket:
            return None
        return bucket.items()

    def __len__(self) -> int:
        """Number of distinct keys (buckets)."""
        return len(self._buckets)

    def __bool__(self) -> bool:
        return bool(self._buckets)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def entry_count(self) -> int:
        """Total number of indexed ``(element, multiplicity)`` entries."""
        return sum(len(bucket) for bucket in self._buckets.values())

    def describe(self) -> Dict[str, Any]:
        # Lists, not tuples: the serving layer json-encodes this as-is.
        return {
            "key_paths": [list(path) for path in self.paths],
            "distinct_keys": len(self._buckets),
            "entries": self.entry_count(),
            "hits": self.hits,
            "rebuilds": self.rebuilds,
            "deltas_applied": self.deltas_applied,
            "poisoned": self._poisoned,
            "version": self.version,
        }

    def __repr__(self) -> str:
        state = "poisoned" if self._poisoned else f"{self.entry_count()} entries"
        return f"HashIndex(paths={self.paths}, {state}, hits={self.hits})"
