"""Relation stores: each relation's bag plus its persistent secondary indexes.

The storage layer is the single owner of mutable database state.  A
:class:`RelationStore` holds one relation's current :class:`~repro.bag.bag.Bag`
and any :class:`~repro.storage.index.HashIndex`es registered against it; a
:class:`StorageManager` names a family of stores (the database keeps one for
nested relations and one for the shredded flat mirror) and hands out the
:class:`IndexProvider` through which the compiled pipeline probes; a
:class:`DictionaryStore` owns the shredded input dictionaries.

Every mutation flows through :meth:`RelationStore.apply_delta`, which folds
the delta into the store's transient :class:`~repro.bag.builder.BagBuilder`s
*and* into every index — one ``O(|Δ|)`` pass that never copies the base
dict, so a one-tuple update to a million-tuple relation costs one-tuple
work.  Stores are **sharded** (:mod:`repro.storage.shards`): contents are
partitioned by a stable hash of the primary index key, the delta pass runs
as independent ``O(|Δ|/N)`` per-shard units, and snapshots assemble the
per-shard frozen bags into a :class:`~repro.storage.shards.ShardedBag` in
O(N).  The store is copy-on-write: the immutable :class:`~repro.bag.bag.Bag`
the rest of the system sees is frozen **lazily**, only when someone asks for
:attr:`RelationStore.bag`, and freezing shares the builders' dicts (O(1)
each); the next delta copies only the *touched shards'* dicts, and only if
that snapshot is still referenced somewhere (per-update evaluation
environments normally die before the store mutates, so the common case
stays in place — and a long-lived reader costs ``O(touched · n/N)`` per
write, not ``O(n)``).  Every mutation bumps a **version counter**; index
views record the version they reflect, and the provider serves one only
when (a) its version matches the store's and (b) the caller's bag is the
store's current frozen snapshot — the version replaces the old reliance on
one immutable bag object per store state, and any mismatch (a hand-built
post-update environment, an escaped evaluation context) silently falls back
to the per-evaluation build, keeping the interpreter-faithful snapshot
semantics.  ``REPRO_SHARDS=1`` reproduces the pre-sharding single-dict
store exactly.

Setting the environment variable :data:`REPRO_NO_INDEX` (to any non-empty
value) disables persistent indexes outright: no registration happens while
it is set, and :meth:`IndexProvider.probe` answers ``None`` — so even a view
sharing an engine with index-registering views falls back to the compiled
pipeline's per-evaluation builds.  This is how the benchmarks measure the
indexes' own contribution.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple, Union

from repro.bag.bag import Bag, EMPTY_BAG
from repro.bag.builder import REPRO_NO_BUILDER, BagBuilder, _getrefcount
from repro.dictionaries import MaterializedDict
from repro.labels import Label
from repro.storage.index import HashIndex, IndexKeyError, Paths, index_key_of
from repro.storage.shards import ShardIndexFamily, ShardedBag, resolve_shard_count

__all__ = [
    "REPRO_NO_INDEX",
    "DictionaryStore",
    "IndexProvider",
    "RelationStore",
    "StorageManager",
    "forced_no_index",
    "persistent_indexes_enabled",
]

#: What a store hands the provider / introspection per registered key:
#: a raw index for single-shard stores, a family otherwise.
IndexView = Union[HashIndex, ShardIndexFamily]

#: Environment variable that disables persistent-index registration.
REPRO_NO_INDEX = "REPRO_NO_INDEX"


def persistent_indexes_enabled() -> bool:
    """True unless the ``REPRO_NO_INDEX`` escape hatch is set."""
    return not os.environ.get(REPRO_NO_INDEX)


@contextmanager
def forced_no_index(disabled: bool = True) -> Iterator[None]:
    """Temporarily disable (or re-enable) persistent indexes.

    Mirrors :func:`repro.nrc.compile.forced_interpretation`, but the hatch
    is dynamic: views constructed inside the block register nothing, and
    *no* view is served a persistent index while the block is active (the
    provider declines every probe), so pre-existing registrations on a
    shared engine cannot leak in.
    """
    saved = os.environ.get(REPRO_NO_INDEX)
    try:
        if disabled:
            os.environ[REPRO_NO_INDEX] = "1"
        else:
            os.environ.pop(REPRO_NO_INDEX, None)
        yield
    finally:
        if saved is None:
            os.environ.pop(REPRO_NO_INDEX, None)
        else:
            os.environ[REPRO_NO_INDEX] = saved


#: Sentinel distinguishing "slice poisoned at dispatch, no summary expected"
#: from "worker reported poisoning" (``None``) in ``adopt_shard``.
_UNTOUCHED = object()


class _Shard:
    """One partition of a sharded store: a builder plus its index slices."""

    __slots__ = ("builder", "indexes")

    def __init__(self, builder: BagBuilder) -> None:
        self.builder = builder
        self.indexes: Dict[Paths, HashIndex] = {}


class RelationStore:
    """One relation's transient contents and its persistent indexes.

    The store is partitioned into N shards (``shards`` argument,
    ``REPRO_SHARDS`` environment variable, or
    :data:`~repro.storage.shards.DEFAULT_SHARD_COUNT`), each owning a
    :class:`~repro.bag.builder.BagBuilder` and one
    :class:`~repro.storage.index.HashIndex` slice per registered key.
    Elements are routed by a stable hash of the **primary index key** — the
    first key registered through :meth:`ensure_index` (whole-element hash
    until one exists; registering the first key re-partitions once).  A
    delta is partitioned in one O(|Δ|) pass and each touched shard folds its
    own pairs into its builder and index slices: O(|Δ|/N) units that are
    independent of each other.  :attr:`bag` assembles the per-shard frozen
    snapshots into a :class:`~repro.storage.shards.ShardedBag` in O(N); a
    retained snapshot therefore copy-on-writes only the shards the next
    delta touches.  :attr:`version` counts mutations; index views record the
    version they reflect, which is what the provider's freshness check keys
    off.

    With ``shards=1`` (the ``REPRO_SHARDS=1`` escape hatch) all of this
    collapses to the pre-sharding behavior: one builder, plain ``Bag``
    snapshots, raw ``HashIndex`` objects.
    """

    __slots__ = (
        "name",
        "_shards",
        "_shard_count",
        "_routing_paths",
        "_version",
        "_indexes",
        "_composite",
        "_composite_freezes",
    )

    def __init__(self, name: str, bag: Bag = EMPTY_BAG, shards: Optional[int] = None) -> None:
        self.name = name
        self._shard_count = resolve_shard_count(shards)
        self._version = 0
        self._routing_paths: Optional[Paths] = None
        self._indexes: Dict[Paths, IndexView] = {}
        self._composite: Optional[ShardedBag] = None
        self._composite_freezes = 0
        if self._shard_count == 1:
            self._shards = [_Shard(BagBuilder.from_bag(bag))]
        else:
            self._shards = [_Shard(BagBuilder()) for _ in range(self._shard_count)]
            if not bag.is_empty():
                self._scatter(bag.items())

    # ------------------------------------------------------------------ #
    # Shard routing
    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> int:
        return self._shard_count

    @property
    def routing_paths(self) -> Optional[Paths]:
        """The primary index key elements are partitioned by (``None`` until
        the first index registers; whole-element hash routing until then)."""
        return self._routing_paths

    def _shard_of(self, element: Any) -> int:
        paths = self._routing_paths
        if paths is not None:
            try:
                return hash(index_key_of(element, paths)) % self._shard_count
            except IndexKeyError:
                # No faithful key: route by the element itself.  Such an
                # element poisons its shard's index slice for these paths,
                # so probes decline store-wide and routing never lies.
                pass
        return hash(element) % self._shard_count

    def _partition(self, pairs) -> Dict[int, List[Tuple[Any, int]]]:
        """One O(|pairs|) routing pass: shard id → that shard's pairs.

        The single partitioning primitive — initial scatter, re-sharding and
        delta application all route through it, so contents and deltas can
        never disagree about an element's owning shard.
        """
        groups: Dict[int, List[Tuple[Any, int]]] = {}
        for element, multiplicity in pairs:
            groups.setdefault(self._shard_of(element), []).append((element, multiplicity))
        return groups

    def _scatter(self, pairs) -> None:
        """Partition ``pairs`` into the shard builders (no index maintenance)."""
        for position, shard_pairs in self._partition(pairs).items():
            self._shards[position].builder.apply_pairs(shard_pairs)

    def _reshard(self) -> None:
        """Re-partition all contents under the current routing paths."""
        pairs = [
            pair for shard in self._shards for pair in shard.builder.items()
        ]
        self._version += 1
        self._composite = None
        self._shards = [_Shard(BagBuilder()) for _ in range(self._shard_count)]
        if pairs:
            self._scatter(pairs)

    # ------------------------------------------------------------------ #
    @property
    def bag(self) -> Bag:
        """The current contents as an immutable bag (lazily frozen snapshot).

        Repeated reads without intervening mutation return the same object;
        the first mutation after a read copies only the *touched shards'*
        dicts, and only if the snapshot is still referenced elsewhere.
        """
        if self._shard_count == 1:
            return self._shards[0].builder.freeze()
        composite = self._composite
        if composite is None:
            composite = self._composite = ShardedBag.of(
                tuple(shard.builder.freeze() for shard in self._shards)
            )
            self._composite_freezes += 1
        return composite

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every applied delta or replacement."""
        return self._version

    @property
    def snapshot_freezes(self) -> int:
        """How many distinct immutable snapshots this store materialized."""
        if self._shard_count == 1:
            return self._shards[0].builder.freezes
        return self._composite_freezes

    def current_snapshot(self) -> Optional[Bag]:
        """The live frozen snapshot, or ``None`` if the store mutated since.

        Used by the provider's correspondence check; deliberately does *not*
        force a freeze.
        """
        if self._shard_count == 1:
            return self._shards[0].builder.frozen
        return self._composite

    def apply_delta(self, delta: Bag) -> None:
        """Fold ``delta`` into the touched shards and their indexes — ``O(|Δ|)``.

        The composite snapshot reference is dropped *before* mutating, so a
        snapshot nobody else retained dies here and the builders keep
        mutating in place; a retained one forces per-shard copy-on-write of
        the touched shards only.
        """
        if delta.is_empty():
            return
        self._version += 1
        version = self._version
        if self._shard_count == 1:
            shard = self._shards[0]
            shard.builder.apply_bag(delta)
            for index in shard.indexes.values():
                index.apply(delta)
                index.version = version
            return
        self._composite = None
        # Per-shard O(|Δ|/N) units: builder fold plus index-slice folds.
        # They are mutually independent — the scheduler may run them
        # concurrently; serial application is just one ordering.
        for position, shard_pairs in self._partition(delta.items()).items():
            shard = self._shards[position]
            shard.builder.apply_pairs(shard_pairs)
            for index in shard.indexes.values():
                index.apply_pairs(shard_pairs)
                index.version = version
        for family in self._indexes.values():
            family.deltas_applied += 1
            family.version = version
            if not family.poisoned:
                family.refresh_poison()

    # ------------------------------------------------------------------ #
    # Shard ownership transfer (sendable execution state)
    # ------------------------------------------------------------------ #
    def routing_token(self) -> Tuple[int, Optional[Paths], int]:
        """Identity of the current shard layout *and* contents.

        A worker's cached copy of a shard is valid only while the layout
        (shard count + routing paths — re-registration re-partitions) and
        the version (any local mutation: a delta applied in-process, a
        wholesale replace, a vacuum rebuild) both still match.  Execution
        backends compare tokens before reusing remote state and re-export
        on any mismatch, so out-of-band mutation can never corrupt an
        offloaded fold.
        """
        return (self._shard_count, self._routing_paths, self._version)

    def partition_delta(self, delta: Bag) -> Dict[int, List[Tuple[Any, int]]]:
        """Route a delta once, in-parent: shard position → that shard's pairs.

        Partitioning stays authoritative in the owning process (it depends
        on the process's hash seed via ``_shard_of``); workers receive
        already-partitioned pairs and never route anything themselves.
        """
        return self._partition(delta.items())

    def shard_unit_paths(self, position: int) -> List[Paths]:
        """The index keys a worker must summarize for one shard's fold:
        every registered slice that is currently healthy.  Poisoned slices
        ignore deltas on the serial path too, so omitting them keeps the
        offloaded fold's counter accounting bit-identical."""
        return [
            paths
            for paths, index in self._shards[position].indexes.items()
            if not index.poisoned
        ]

    def export_shard(self, position: int) -> Dict[str, Any]:
        """A picklable snapshot of one shard, for moving ownership out.

        Contains the builder's multiplicity dict (copied, so worker-side
        folds never alias this store's state) plus the full state of every
        index slice.  ``version`` stamps which store state the export
        reflects — the receiving side pairs it with :meth:`routing_token`
        to detect staleness.
        """
        shard = self._shards[position]
        return {
            "relation": self.name,
            "shard": position,
            "version": self._version,
            "data": dict(shard.builder._data),
            "indexes": {
                paths: index.export_shard() for paths, index in shard.indexes.items()
            },
        }

    def begin_delta(self) -> int:
        """Open one delta application whose folds happen elsewhere.

        Mirrors the head of :meth:`apply_delta` — bump the version, drop
        the composite snapshot reference — and returns the new version for
        the eventual :meth:`adopt_shard` calls.  Callers must pair it with
        :meth:`finish_delta` after every touched shard was adopted (or
        folded locally as a fallback).
        """
        self._version += 1
        if self._shard_count > 1:
            self._composite = None
        return self._version

    def adopt_shard(
        self,
        position: int,
        data: Dict[Any, int],
        index_deltas: Optional[Dict[Paths, Optional[List[Tuple[Any, Any, int]]]]] = None,
        *,
        version: Optional[int] = None,
    ) -> None:
        """Fold one shard's remotely computed result back in, without re-hashing.

        ``data`` is the shard's post-fold multiplicity dict (the frozen
        result bag's contents); the builder adopts it wholesale — a retained
        reader snapshot keeps its old dict, so no copy-on-write pass runs.
        ``index_deltas`` maps each healthy slice's paths to the
        ``(key, element, multiplicity)`` triples the worker computed (the
        ``index_key_of`` projections that dominate maintenance cost), or to
        ``None`` when the worker hit an unhashable key — which poisons the
        slice exactly as an in-process fold would.  Slices absent from the
        mapping were poisoned at dispatch time and only advance their
        version stamp, matching the serial path's no-op fold.
        """
        shard = self._shards[position]
        shard.builder.adopt_dict(data)
        stamp = self._version if version is None else version
        deltas = index_deltas or {}
        for paths, index in shard.indexes.items():
            triples = deltas.get(paths, _UNTOUCHED)
            if triples is None:
                if not index.poisoned:
                    index.deltas_applied += 1
                    index.poison()
            elif triples is not _UNTOUCHED:
                index.apply_keyed_pairs(triples)
            index.version = stamp

    def apply_shard_pairs(self, position: int, pairs: List[Tuple[Any, int]]) -> None:
        """Fold one shard's already-partitioned pairs in-process.

        Exactly the per-shard unit of :meth:`apply_delta`'s multi-shard
        loop, exposed for execution backends: the threads backend runs one
        call per touched shard on its pool (units touch disjoint shards, so
        concurrency is scheduling, not semantics), and the process backend
        uses it to recover locally when a work unit cannot be offloaded.
        Callers must wrap the calls in :meth:`begin_delta` /
        :meth:`finish_delta`.
        """
        shard = self._shards[position]
        version = self._version
        shard.builder.apply_pairs(pairs)
        for index in shard.indexes.values():
            index.apply_pairs(pairs)
            index.version = version

    def finish_delta(self) -> None:
        """Close a :meth:`begin_delta` application: family-level accounting.

        Mirrors the tail of :meth:`apply_delta` — one delta counted per
        index family, version stamps advanced, poison state refreshed.
        Single-shard stores keep raw :class:`HashIndex` views whose
        counters the adopt path already advanced, so there is nothing to do.
        """
        if self._shard_count == 1:
            return
        version = self._version
        for family in self._indexes.values():
            family.deltas_applied += 1
            family.version = version
            if not family.poisoned:
                family.refresh_poison()

    def replace(self, bag: Bag) -> None:
        """Swap in a freshly computed bag; every index is rebuilt."""
        self._version += 1
        version = self._version
        if self._shard_count == 1:
            shard = self._shards[0]
            freezes = shard.builder.freezes
            shard.builder = BagBuilder.from_bag(bag)
            # The freeze counter is cumulative per store, not per builder.
            shard.builder.freezes = freezes
            for index in shard.indexes.values():
                index.rebuild(bag)
                index.version = version
            return
        self._composite = None
        self._shards = [_Shard(BagBuilder()) for _ in range(self._shard_count)]
        if not bag.is_empty():
            self._scatter(bag.items())
        for paths, family in self._indexes.items():
            shard_indexes = []
            for shard in self._shards:
                index = HashIndex(paths, shard.builder.freeze())
                index.version = version
                shard.indexes[paths] = index
                shard_indexes.append(index)
            family.shard_indexes = tuple(shard_indexes)
            family.rebuilds += 1
            family.version = version
            family.refresh_poison()

    def vacuum(self) -> int:
        """Re-validate poisoned indexes against the current bags, per shard.

        A transient unhashable key poisons only the owning shard's index
        slice; once the offending elements are gone, rebuilding *that shard*
        restores ``O(|Δ|)`` maintenance — healthy shards keep their
        incrementally-maintained state untouched.  Returns the number of
        index views that came back healthy (a shard whose bag still contains
        bad keys re-poisons and the view stays on the per-evaluation
        fallback).
        """
        revalidated = 0
        for view in self._indexes.values():
            if not view.poisoned:
                continue
            if isinstance(view, HashIndex):
                view.rebuild(self.bag)
                view.version = self._version
                if not view.poisoned:
                    revalidated += 1
                continue
            view.revalidate(
                tuple(shard.builder.freeze() for shard in self._shards),
                self._version,
            )
            if not view.poisoned:
                revalidated += 1
        return revalidated

    # ------------------------------------------------------------------ #
    # Indexes
    # ------------------------------------------------------------------ #
    def ensure_index(self, paths: Paths) -> IndexView:
        """The index view keyed by ``paths``, built from the current bags if new.

        The first registered key becomes the store's primary **routing**
        key: contents are re-partitioned once so that equal keys co-locate,
        which is what lets the provider answer primary-key probes from a
        single shard.
        """
        key = tuple(tuple(path) for path in paths)
        view = self._indexes.get(key)
        if view is not None:
            return view
        if self._shard_count == 1:
            shard = self._shards[0]
            index = HashIndex(key, self.bag)
            index.version = self._version
            shard.indexes[key] = index
            self._indexes[key] = index
            return index
        if self._routing_paths is None:
            self._routing_paths = key
            self._reshard()
        shard_indexes = []
        for shard in self._shards:
            index = HashIndex(key, shard.builder.freeze())
            index.version = self._version
            shard.indexes[key] = index
            shard_indexes.append(index)
        family = ShardIndexFamily(
            key,
            tuple(shard_indexes),
            routed=(key == self._routing_paths),
            version=self._version,
        )
        self._indexes[key] = family
        return family

    def index_for(self, paths: Paths) -> Optional[IndexView]:
        """Lookup by an already-normalized tuple-of-tuples key.

        This sits on the compiled pipeline's per-probe path (the provider
        re-verifies on every call), so unlike :meth:`ensure_index` it does
        not re-normalize: the compiler always supplies tuple paths.
        """
        return self._indexes.get(paths)

    def indexes(self) -> Tuple[IndexView, ...]:
        return tuple(self._indexes.values())

    def describe(self) -> Dict[str, Any]:
        description = {
            "relation": self.name,
            "cardinality": sum(shard.builder.cardinality() for shard in self._shards),
            "distinct": sum(shard.builder.distinct_size() for shard in self._shards),
            "version": self._version,
            "snapshot_freezes": self.snapshot_freezes,
            "shards": self._shard_count,
            "indexes": [view.describe() for view in self._indexes.values()],
        }
        if self._shard_count > 1:
            paths = self._routing_paths
            description["routing_paths"] = (
                None if paths is None else [list(path) for path in paths]
            )
            description["shard_stats"] = [
                {
                    "shard": position,
                    "distinct": shard.builder.distinct_size(),
                    "cardinality": shard.builder.cardinality(),
                    "snapshot_freezes": shard.builder.freezes,
                }
                for position, shard in enumerate(self._shards)
            ]
        return description

    def __repr__(self) -> str:
        distinct = sum(shard.builder.distinct_size() for shard in self._shards)
        return (
            f"RelationStore({self.name!r}, {distinct} distinct, "
            f"{self._shard_count} shards, v{self._version}, "
            f"{len(self._indexes)} indexes)"
        )


class IndexProvider:
    """The compiled pipeline's window onto a manager's persistent indexes.

    :meth:`probe` answers only when the registered index provably describes
    the bag the query is reading: the index's recorded **version** must
    match the store's current version (freshness — the check that replaced
    the old one-immutable-bag-per-state identity test) *and* the caller's
    bag must be the store's current frozen snapshot (correspondence — a
    hand-built or stale environment binding fails it).  The correspondence
    check peeks at the live snapshot without forcing a freeze.  Every other
    case returns ``None`` and the pipeline rebuilds per evaluation,
    recording the rebuild here so hit/rebuild accounting stays truthful.
    """

    __slots__ = ("_manager",)

    def __init__(self, manager: "StorageManager") -> None:
        self._manager = manager

    def probe(self, name: str, paths: Paths, source_bag: Bag) -> Optional[IndexView]:
        """Serve the index view for ``(name, paths)`` if it describes ``source_bag``.

        For multi-shard stores the returned
        :class:`~repro.storage.shards.ShardIndexFamily` routes primary-key
        probes to the single owning shard and merges the (disjoint) shard
        buckets for secondary keys; the compiled pipeline probes it exactly
        like a raw :class:`~repro.storage.index.HashIndex`.
        """
        if os.environ.get(REPRO_NO_INDEX):
            return None
        store = self._manager.get(name)
        if store is None or store.current_snapshot() is not source_bag:
            return None
        index = store.index_for(paths)
        if index is None or index.poisoned or index.version != store.version:
            return None
        return index

    def note_rebuild(self, name: str, paths: Paths) -> None:
        """Record that the pipeline had to fall back to a per-evaluation build."""
        store = self._manager.get(name)
        if store is None:
            return
        index = store.index_for(paths)
        if index is not None:
            index.rebuilds += 1


class StorageManager:
    """A named family of relation stores sharing one index provider.

    ``shards`` fixes the shard count of every store this manager creates
    (``None`` defers to ``REPRO_SHARDS`` / the default at creation time).
    """

    __slots__ = ("kind", "_stores", "_provider", "_shards")

    def __init__(self, kind: str = "relations", shards: Optional[int] = None) -> None:
        self.kind = kind
        self._stores: Dict[str, RelationStore] = {}
        self._provider = IndexProvider(self)
        self._shards = shards

    @property
    def shards(self) -> Optional[int]:
        """The pinned shard count, or ``None`` when stores resolve it themselves."""
        return self._shards

    # ------------------------------------------------------------------ #
    def ensure(
        self, name: str, bag: Bag = EMPTY_BAG, shards: Optional[int] = None
    ) -> RelationStore:
        """Get-or-create a store.  ``shards`` overrides the manager pin for
        this one store (the registration path uses it to keep small
        relations on a single shard); it only applies at creation time."""
        store = self._stores.get(name)
        if store is None:
            count = self._shards if shards is None else shards
            store = self._stores[name] = RelationStore(name, bag, shards=count)
        return store

    def get(self, name: str) -> Optional[RelationStore]:
        return self._stores.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._stores

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._stores))

    def bag(self, name: str) -> Bag:
        return self._stores[name].bag

    def bags(self) -> Dict[str, Bag]:
        """Name → current bag snapshot (the relations of an environment)."""
        return {name: store.bag for name, store in self._stores.items()}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def apply_delta(self, name: str, delta: Bag) -> None:
        self.ensure(name).apply_delta(delta)

    def replace(self, name: str, bag: Bag) -> None:
        self.ensure(name).replace(bag)

    # ------------------------------------------------------------------ #
    # Indexes
    # ------------------------------------------------------------------ #
    def ensure_index(self, name: str, paths: Paths) -> Optional[HashIndex]:
        """Register a persistent index, honoring the ``REPRO_NO_INDEX`` hatch."""
        if not persistent_indexes_enabled():
            return None
        store = self._stores.get(name)
        if store is None:
            return None
        return store.ensure_index(paths)

    def vacuum(self) -> int:
        """Re-validate poisoned indexes in every store; returns the count healed."""
        return sum(store.vacuum() for store in self._stores.values())

    def provider(self) -> IndexProvider:
        return self._provider

    def report(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "stores": [store.describe() for _, store in sorted(self._stores.items())],
        }

    def __repr__(self) -> str:
        return f"StorageManager({self.kind!r}, {len(self._stores)} stores)"


class DictionaryStore:
    """The shredded input dictionaries, with in-place delta-merge application.

    Dictionaries are pointwise bag maps (label → bag).  The store owns one
    mutable entries dict per dictionary and folds deltas into it pointwise —
    ``O(|Δ| labels)`` per application, never a full-map rebuild.  Readers
    get a lazily frozen :class:`~repro.dictionaries.MaterializedDict` view
    that adopts the entries dict without copying; the next delta after a
    read copies the map only if that view is still referenced somewhere
    (the same copy-on-write discipline as
    :class:`~repro.bag.builder.BagBuilder`).
    """

    __slots__ = ("_entries", "_frozen")

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[Label, Bag]] = {}
        self._frozen: Dict[str, Optional[MaterializedDict]] = {}

    def set(self, name: str, dictionary: MaterializedDict) -> None:
        if not isinstance(dictionary, MaterializedDict):
            raise TypeError("DictionaryStore.set requires a MaterializedDict")
        # Adopt the given dictionary's entries as the frozen-shared state;
        # the first delta copies only if the caller still holds it.
        self._entries[name] = dictionary._entries
        self._frozen[name] = dictionary

    def get(self, name: str, default: Optional[MaterializedDict] = None):
        entries = self._entries.get(name)
        if entries is None:
            return default
        return self._freeze(name, entries)

    def _freeze(self, name: str, entries: Dict[Label, Bag]) -> MaterializedDict:
        frozen = self._frozen.get(name)
        if frozen is None:
            frozen = self._frozen[name] = MaterializedDict._adopt(entries)
        return frozen

    def _writable(self, name: str) -> Dict[Label, Bag]:
        entries = self._entries.get(name)
        if entries is None:
            entries = self._entries[name] = {}
            self._frozen[name] = None
            return entries
        if os.environ.get(REPRO_NO_BUILDER):
            # Full-copy escape hatch: reproduce the seed's rebuild-per-merge.
            self._frozen[name] = None
            entries = self._entries[name] = dict(entries)
            return entries
        frozen = self._frozen.get(name)
        if frozen is not None:
            self._frozen[name] = None
            # As in BagBuilder._writable: the entries dict is checked too,
            # so an iterator over a handed-out view keeps its snapshot
            # (references when unshared: our _entries value slot, the frozen
            # view's attribute, the local binding, and getrefcount's
            # argument = 4).
            if (
                _getrefcount is None
                or _getrefcount(frozen) > 2
                or _getrefcount(entries) > 4
            ):
                entries = self._entries[name] = dict(entries)
        return entries

    def apply_delta(self, name: str, delta) -> None:
        if isinstance(delta, MaterializedDict):
            if len(delta) == 0:
                # Keep the name registered (an empty merge used to create
                # the entry) but touch nothing.
                if name not in self._entries:
                    self._entries[name] = {}
                    self._frozen[name] = None
                return
            entries = self._writable(name)
            for label, bag in delta.items():
                existing = entries.get(label)
                # Labels stay in the support even when their bags cancel to
                # empty (``supp([l ↦ ∅]) = {l}``), matching the pointwise
                # ``⊎`` of Section 5.2 exactly.
                entries[label] = bag if existing is None else existing.union(bag)
            return
        # Non-materialized deltas (intensional / lazy combinations) go
        # through the dictionary algebra and re-materialize, as before.
        existing_dict = self.get(name, MaterializedDict({}))
        merged = existing_dict.add(delta)
        if not isinstance(merged, MaterializedDict):
            merged = merged.materialize(merged.support() or ())
        self._entries[name] = merged._entries
        self._frozen[name] = merged

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def as_mapping(self) -> Dict[str, MaterializedDict]:
        return {
            name: self._freeze(name, entries)
            for name, entries in self._entries.items()
        }

    def report(self) -> Dict[str, Any]:
        return {
            "kind": "dictionaries",
            "stores": [
                {"dictionary": name, "labels": len(entries)}
                for name, entries in sorted(self._entries.items())
            ],
        }

    def __repr__(self) -> str:
        return f"DictionaryStore({len(self._entries)} dictionaries)"
