"""Relation stores: each relation's bag plus its persistent secondary indexes.

The storage layer is the single owner of mutable database state.  A
:class:`RelationStore` holds one relation's current :class:`~repro.bag.bag.Bag`
and any :class:`~repro.storage.index.HashIndex`es registered against it; a
:class:`StorageManager` names a family of stores (the database keeps one for
nested relations and one for the shredded flat mirror) and hands out the
:class:`IndexProvider` through which the compiled pipeline probes; a
:class:`DictionaryStore` owns the shredded input dictionaries.

Every mutation flows through :meth:`RelationStore.apply_delta`, which unions
the delta into the bag *and* folds it into every index — one ``O(|Δ|)`` pass,
so indexes never need rescanning the base.  Because bags are immutable, the
provider can verify with a single identity check that an index still
describes the exact bag a compiled query is reading; any mismatch (a caller
evaluating against a hand-built post-update environment, say) silently falls
back to the per-evaluation build, keeping the interpreter-faithful semantics.

Setting the environment variable :data:`REPRO_NO_INDEX` (to any non-empty
value) disables persistent indexes outright: no registration happens while
it is set, and :meth:`IndexProvider.probe` answers ``None`` — so even a view
sharing an engine with index-registering views falls back to the compiled
pipeline's per-evaluation builds.  This is how the benchmarks measure the
indexes' own contribution.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.bag.bag import Bag, EMPTY_BAG
from repro.dictionaries import MaterializedDict
from repro.storage.index import HashIndex, Paths

__all__ = [
    "REPRO_NO_INDEX",
    "DictionaryStore",
    "IndexProvider",
    "RelationStore",
    "StorageManager",
    "forced_no_index",
    "persistent_indexes_enabled",
]

#: Environment variable that disables persistent-index registration.
REPRO_NO_INDEX = "REPRO_NO_INDEX"


def persistent_indexes_enabled() -> bool:
    """True unless the ``REPRO_NO_INDEX`` escape hatch is set."""
    return not os.environ.get(REPRO_NO_INDEX)


@contextmanager
def forced_no_index(disabled: bool = True) -> Iterator[None]:
    """Temporarily disable (or re-enable) persistent indexes.

    Mirrors :func:`repro.nrc.compile.forced_interpretation`, but the hatch
    is dynamic: views constructed inside the block register nothing, and
    *no* view is served a persistent index while the block is active (the
    provider declines every probe), so pre-existing registrations on a
    shared engine cannot leak in.
    """
    saved = os.environ.get(REPRO_NO_INDEX)
    try:
        if disabled:
            os.environ[REPRO_NO_INDEX] = "1"
        else:
            os.environ.pop(REPRO_NO_INDEX, None)
        yield
    finally:
        if saved is None:
            os.environ.pop(REPRO_NO_INDEX, None)
        else:
            os.environ[REPRO_NO_INDEX] = saved


class RelationStore:
    """One relation's bag and the persistent indexes registered against it."""

    __slots__ = ("name", "_bag", "_indexes")

    def __init__(self, name: str, bag: Bag = EMPTY_BAG) -> None:
        self.name = name
        self._bag = bag
        self._indexes: Dict[Paths, HashIndex] = {}

    # ------------------------------------------------------------------ #
    @property
    def bag(self) -> Bag:
        """The current contents (immutable; replaced on every mutation)."""
        return self._bag

    def apply_delta(self, delta: Bag) -> None:
        """Union ``delta`` into the bag and fold it into every index."""
        if delta.is_empty():
            return
        self._bag = self._bag.union(delta)
        for index in self._indexes.values():
            index.apply(delta)

    def replace(self, bag: Bag) -> None:
        """Swap in a freshly computed bag; every index is rebuilt."""
        self._bag = bag
        for index in self._indexes.values():
            index.rebuild(bag)

    def vacuum(self) -> int:
        """Re-validate poisoned indexes against the current bag.

        A transient unhashable key poisons an index; once the offending
        elements are gone, one full rebuild restores ``O(|Δ|)`` maintenance.
        Returns the number of indexes that came back healthy (an index whose
        bag still contains bad keys re-poisons and stays on the
        per-evaluation fallback).
        """
        revalidated = 0
        for index in self._indexes.values():
            if index.poisoned:
                index.rebuild(self._bag)
                if not index.poisoned:
                    revalidated += 1
        return revalidated

    # ------------------------------------------------------------------ #
    # Indexes
    # ------------------------------------------------------------------ #
    def ensure_index(self, paths: Paths) -> HashIndex:
        """The index keyed by ``paths``, built from the current bag if new."""
        key = tuple(tuple(path) for path in paths)
        index = self._indexes.get(key)
        if index is None:
            index = self._indexes[key] = HashIndex(key, self._bag)
        return index

    def index_for(self, paths: Paths) -> Optional[HashIndex]:
        """Lookup by an already-normalized tuple-of-tuples key.

        This sits on the compiled pipeline's per-probe path (the provider
        re-verifies on every call), so unlike :meth:`ensure_index` it does
        not re-normalize: the compiler always supplies tuple paths.
        """
        return self._indexes.get(paths)

    def indexes(self) -> Tuple[HashIndex, ...]:
        return tuple(self._indexes.values())

    def describe(self) -> Dict[str, Any]:
        return {
            "relation": self.name,
            "cardinality": self._bag.cardinality(),
            "distinct": self._bag.distinct_size(),
            "indexes": [index.describe() for index in self._indexes.values()],
        }

    def __repr__(self) -> str:
        return (
            f"RelationStore({self.name!r}, {self._bag.distinct_size()} distinct, "
            f"{len(self._indexes)} indexes)"
        )


class IndexProvider:
    """The compiled pipeline's window onto a manager's persistent indexes.

    :meth:`probe` answers only when the registered index provably describes
    the bag the query is reading (``store.bag is source_bag`` — exact for
    immutable bags) and is not poisoned; every other case returns ``None``
    and the pipeline rebuilds per evaluation, recording the rebuild here so
    hit/rebuild accounting stays truthful.
    """

    __slots__ = ("_manager",)

    def __init__(self, manager: "StorageManager") -> None:
        self._manager = manager

    def probe(self, name: str, paths: Paths, source_bag: Bag) -> Optional[HashIndex]:
        if os.environ.get(REPRO_NO_INDEX):
            return None
        store = self._manager.get(name)
        if store is None or store.bag is not source_bag:
            return None
        index = store.index_for(paths)
        if index is None or index.poisoned:
            return None
        return index

    def note_rebuild(self, name: str, paths: Paths) -> None:
        """Record that the pipeline had to fall back to a per-evaluation build."""
        store = self._manager.get(name)
        if store is None:
            return
        index = store.index_for(paths)
        if index is not None:
            index.rebuilds += 1


class StorageManager:
    """A named family of relation stores sharing one index provider."""

    __slots__ = ("kind", "_stores", "_provider")

    def __init__(self, kind: str = "relations") -> None:
        self.kind = kind
        self._stores: Dict[str, RelationStore] = {}
        self._provider = IndexProvider(self)

    # ------------------------------------------------------------------ #
    def ensure(self, name: str, bag: Bag = EMPTY_BAG) -> RelationStore:
        store = self._stores.get(name)
        if store is None:
            store = self._stores[name] = RelationStore(name, bag)
        return store

    def get(self, name: str) -> Optional[RelationStore]:
        return self._stores.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._stores

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._stores))

    def bag(self, name: str) -> Bag:
        return self._stores[name].bag

    def bags(self) -> Dict[str, Bag]:
        """Name → current bag snapshot (the relations of an environment)."""
        return {name: store.bag for name, store in self._stores.items()}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def apply_delta(self, name: str, delta: Bag) -> None:
        self.ensure(name).apply_delta(delta)

    def replace(self, name: str, bag: Bag) -> None:
        self.ensure(name).replace(bag)

    # ------------------------------------------------------------------ #
    # Indexes
    # ------------------------------------------------------------------ #
    def ensure_index(self, name: str, paths: Paths) -> Optional[HashIndex]:
        """Register a persistent index, honoring the ``REPRO_NO_INDEX`` hatch."""
        if not persistent_indexes_enabled():
            return None
        store = self._stores.get(name)
        if store is None:
            return None
        return store.ensure_index(paths)

    def vacuum(self) -> int:
        """Re-validate poisoned indexes in every store; returns the count healed."""
        return sum(store.vacuum() for store in self._stores.values())

    def provider(self) -> IndexProvider:
        return self._provider

    def report(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "stores": [store.describe() for _, store in sorted(self._stores.items())],
        }

    def __repr__(self) -> str:
        return f"StorageManager({self.kind!r}, {len(self._stores)} stores)"


class DictionaryStore:
    """The shredded input dictionaries, with delta-merge application.

    Dictionaries are pointwise bag maps (label → bag); applying a delta adds
    entry bags pointwise and materializes the result, the same merge the
    database previously performed inline.
    """

    __slots__ = ("_dicts",)

    def __init__(self) -> None:
        self._dicts: Dict[str, MaterializedDict] = {}

    def set(self, name: str, dictionary: MaterializedDict) -> None:
        self._dicts[name] = dictionary

    def get(self, name: str, default: Optional[MaterializedDict] = None):
        if default is None:
            return self._dicts.get(name)
        return self._dicts.get(name, default)

    def apply_delta(self, name: str, delta) -> None:
        existing = self._dicts.get(name, MaterializedDict({}))
        merged = existing.add(delta)
        if not isinstance(merged, MaterializedDict):
            merged = merged.materialize(merged.support() or ())
        self._dicts[name] = merged

    def __contains__(self, name: str) -> bool:
        return name in self._dicts

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._dicts))

    def as_mapping(self) -> Dict[str, MaterializedDict]:
        return dict(self._dicts)

    def report(self) -> Dict[str, Any]:
        return {
            "kind": "dictionaries",
            "stores": [
                {"dictionary": name, "labels": len(dictionary)}
                for name, dictionary in sorted(self._dicts.items())
            ],
        }

    def __repr__(self) -> str:
        return f"DictionaryStore({len(self._dicts)} dictionaries)"
