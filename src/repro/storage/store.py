"""Relation stores: each relation's bag plus its persistent secondary indexes.

The storage layer is the single owner of mutable database state.  A
:class:`RelationStore` holds one relation's current :class:`~repro.bag.bag.Bag`
and any :class:`~repro.storage.index.HashIndex`es registered against it; a
:class:`StorageManager` names a family of stores (the database keeps one for
nested relations and one for the shredded flat mirror) and hands out the
:class:`IndexProvider` through which the compiled pipeline probes; a
:class:`DictionaryStore` owns the shredded input dictionaries.

Every mutation flows through :meth:`RelationStore.apply_delta`, which folds
the delta into the store's transient :class:`~repro.bag.builder.BagBuilder`
*and* into every index — one ``O(|Δ|)`` pass that never copies the base
dict, so a one-tuple update to a million-tuple relation costs one-tuple
work.  The store is copy-on-write: the immutable :class:`~repro.bag.bag.Bag`
the rest of the system sees is frozen **lazily**, only when someone asks for
:attr:`RelationStore.bag`, and freezing shares the builder's dict (O(1));
the next delta copies the dict only if that snapshot is still referenced
somewhere (per-update evaluation environments normally die before the store
mutates, so the common case stays in place).  Every mutation bumps a
**version counter**; indexes record the version they reflect, and the
provider serves an index only when (a) the index's version matches the
store's and (b) the caller's bag is the store's current frozen snapshot —
the version replaces the old reliance on one immutable bag object per store
state, and any mismatch (a hand-built post-update environment, an escaped
evaluation context) silently falls back to the per-evaluation build,
keeping the interpreter-faithful snapshot semantics.

Setting the environment variable :data:`REPRO_NO_INDEX` (to any non-empty
value) disables persistent indexes outright: no registration happens while
it is set, and :meth:`IndexProvider.probe` answers ``None`` — so even a view
sharing an engine with index-registering views falls back to the compiled
pipeline's per-evaluation builds.  This is how the benchmarks measure the
indexes' own contribution.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.bag.bag import Bag, EMPTY_BAG
from repro.bag.builder import REPRO_NO_BUILDER, BagBuilder, _getrefcount
from repro.dictionaries import MaterializedDict
from repro.labels import Label
from repro.storage.index import HashIndex, Paths

__all__ = [
    "REPRO_NO_INDEX",
    "DictionaryStore",
    "IndexProvider",
    "RelationStore",
    "StorageManager",
    "forced_no_index",
    "persistent_indexes_enabled",
]

#: Environment variable that disables persistent-index registration.
REPRO_NO_INDEX = "REPRO_NO_INDEX"


def persistent_indexes_enabled() -> bool:
    """True unless the ``REPRO_NO_INDEX`` escape hatch is set."""
    return not os.environ.get(REPRO_NO_INDEX)


@contextmanager
def forced_no_index(disabled: bool = True) -> Iterator[None]:
    """Temporarily disable (or re-enable) persistent indexes.

    Mirrors :func:`repro.nrc.compile.forced_interpretation`, but the hatch
    is dynamic: views constructed inside the block register nothing, and
    *no* view is served a persistent index while the block is active (the
    provider declines every probe), so pre-existing registrations on a
    shared engine cannot leak in.
    """
    saved = os.environ.get(REPRO_NO_INDEX)
    try:
        if disabled:
            os.environ[REPRO_NO_INDEX] = "1"
        else:
            os.environ.pop(REPRO_NO_INDEX, None)
        yield
    finally:
        if saved is None:
            os.environ.pop(REPRO_NO_INDEX, None)
        else:
            os.environ[REPRO_NO_INDEX] = saved


class RelationStore:
    """One relation's transient contents and its persistent indexes.

    The store owns a :class:`~repro.bag.builder.BagBuilder` and applies
    deltas to it in place (``O(|Δ|)``); :attr:`bag` lazily freezes the
    canonical immutable snapshot (O(1), copy-on-write — see the module
    docstring).  :attr:`version` counts mutations; every index records the
    version it reflects, which is what the provider's freshness check keys
    off.
    """

    __slots__ = ("name", "_builder", "_version", "_indexes")

    def __init__(self, name: str, bag: Bag = EMPTY_BAG) -> None:
        self.name = name
        self._builder = BagBuilder.from_bag(bag)
        self._version = 0
        self._indexes: Dict[Paths, HashIndex] = {}

    # ------------------------------------------------------------------ #
    @property
    def bag(self) -> Bag:
        """The current contents as an immutable bag (lazily frozen snapshot).

        Repeated reads without intervening mutation return the same object;
        the first mutation after a read copies the dict only if the snapshot
        is still referenced elsewhere.
        """
        return self._builder.freeze()

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every applied delta or replacement."""
        return self._version

    @property
    def snapshot_freezes(self) -> int:
        """How many distinct immutable snapshots this store materialized."""
        return self._builder.freezes

    def current_snapshot(self) -> Optional[Bag]:
        """The live frozen snapshot, or ``None`` if the store mutated since.

        Used by the provider's correspondence check; deliberately does *not*
        force a freeze.
        """
        return self._builder.frozen

    def apply_delta(self, delta: Bag) -> None:
        """Fold ``delta`` into the builder and every index — ``O(|Δ|)``."""
        if delta.is_empty():
            return
        self._version += 1
        self._builder.apply_bag(delta)
        for index in self._indexes.values():
            index.apply(delta)
            index.version = self._version

    def replace(self, bag: Bag) -> None:
        """Swap in a freshly computed bag; every index is rebuilt."""
        self._version += 1
        freezes = self._builder.freezes
        self._builder = BagBuilder.from_bag(bag)
        # The freeze counter is cumulative per store, not per builder.
        self._builder.freezes = freezes
        for index in self._indexes.values():
            index.rebuild(bag)
            index.version = self._version

    def vacuum(self) -> int:
        """Re-validate poisoned indexes against the current bag.

        A transient unhashable key poisons an index; once the offending
        elements are gone, one full rebuild restores ``O(|Δ|)`` maintenance.
        Returns the number of indexes that came back healthy (an index whose
        bag still contains bad keys re-poisons and stays on the
        per-evaluation fallback).
        """
        revalidated = 0
        for index in self._indexes.values():
            if index.poisoned:
                index.rebuild(self.bag)
                index.version = self._version
                if not index.poisoned:
                    revalidated += 1
        return revalidated

    # ------------------------------------------------------------------ #
    # Indexes
    # ------------------------------------------------------------------ #
    def ensure_index(self, paths: Paths) -> HashIndex:
        """The index keyed by ``paths``, built from the current bag if new."""
        key = tuple(tuple(path) for path in paths)
        index = self._indexes.get(key)
        if index is None:
            index = self._indexes[key] = HashIndex(key, self.bag)
            index.version = self._version
        return index

    def index_for(self, paths: Paths) -> Optional[HashIndex]:
        """Lookup by an already-normalized tuple-of-tuples key.

        This sits on the compiled pipeline's per-probe path (the provider
        re-verifies on every call), so unlike :meth:`ensure_index` it does
        not re-normalize: the compiler always supplies tuple paths.
        """
        return self._indexes.get(paths)

    def indexes(self) -> Tuple[HashIndex, ...]:
        return tuple(self._indexes.values())

    def describe(self) -> Dict[str, Any]:
        return {
            "relation": self.name,
            "cardinality": self._builder.cardinality(),
            "distinct": self._builder.distinct_size(),
            "version": self._version,
            "snapshot_freezes": self._builder.freezes,
            "indexes": [index.describe() for index in self._indexes.values()],
        }

    def __repr__(self) -> str:
        return (
            f"RelationStore({self.name!r}, {self._builder.distinct_size()} distinct, "
            f"v{self._version}, {len(self._indexes)} indexes)"
        )


class IndexProvider:
    """The compiled pipeline's window onto a manager's persistent indexes.

    :meth:`probe` answers only when the registered index provably describes
    the bag the query is reading: the index's recorded **version** must
    match the store's current version (freshness — the check that replaced
    the old one-immutable-bag-per-state identity test) *and* the caller's
    bag must be the store's current frozen snapshot (correspondence — a
    hand-built or stale environment binding fails it).  The correspondence
    check peeks at the live snapshot without forcing a freeze.  Every other
    case returns ``None`` and the pipeline rebuilds per evaluation,
    recording the rebuild here so hit/rebuild accounting stays truthful.
    """

    __slots__ = ("_manager",)

    def __init__(self, manager: "StorageManager") -> None:
        self._manager = manager

    def probe(self, name: str, paths: Paths, source_bag: Bag) -> Optional[HashIndex]:
        if os.environ.get(REPRO_NO_INDEX):
            return None
        store = self._manager.get(name)
        if store is None or store.current_snapshot() is not source_bag:
            return None
        index = store.index_for(paths)
        if index is None or index.poisoned or index.version != store.version:
            return None
        return index

    def note_rebuild(self, name: str, paths: Paths) -> None:
        """Record that the pipeline had to fall back to a per-evaluation build."""
        store = self._manager.get(name)
        if store is None:
            return
        index = store.index_for(paths)
        if index is not None:
            index.rebuilds += 1


class StorageManager:
    """A named family of relation stores sharing one index provider."""

    __slots__ = ("kind", "_stores", "_provider")

    def __init__(self, kind: str = "relations") -> None:
        self.kind = kind
        self._stores: Dict[str, RelationStore] = {}
        self._provider = IndexProvider(self)

    # ------------------------------------------------------------------ #
    def ensure(self, name: str, bag: Bag = EMPTY_BAG) -> RelationStore:
        store = self._stores.get(name)
        if store is None:
            store = self._stores[name] = RelationStore(name, bag)
        return store

    def get(self, name: str) -> Optional[RelationStore]:
        return self._stores.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._stores

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._stores))

    def bag(self, name: str) -> Bag:
        return self._stores[name].bag

    def bags(self) -> Dict[str, Bag]:
        """Name → current bag snapshot (the relations of an environment)."""
        return {name: store.bag for name, store in self._stores.items()}

    # ------------------------------------------------------------------ #
    # Mutation
    # ------------------------------------------------------------------ #
    def apply_delta(self, name: str, delta: Bag) -> None:
        self.ensure(name).apply_delta(delta)

    def replace(self, name: str, bag: Bag) -> None:
        self.ensure(name).replace(bag)

    # ------------------------------------------------------------------ #
    # Indexes
    # ------------------------------------------------------------------ #
    def ensure_index(self, name: str, paths: Paths) -> Optional[HashIndex]:
        """Register a persistent index, honoring the ``REPRO_NO_INDEX`` hatch."""
        if not persistent_indexes_enabled():
            return None
        store = self._stores.get(name)
        if store is None:
            return None
        return store.ensure_index(paths)

    def vacuum(self) -> int:
        """Re-validate poisoned indexes in every store; returns the count healed."""
        return sum(store.vacuum() for store in self._stores.values())

    def provider(self) -> IndexProvider:
        return self._provider

    def report(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "stores": [store.describe() for _, store in sorted(self._stores.items())],
        }

    def __repr__(self) -> str:
        return f"StorageManager({self.kind!r}, {len(self._stores)} stores)"


class DictionaryStore:
    """The shredded input dictionaries, with in-place delta-merge application.

    Dictionaries are pointwise bag maps (label → bag).  The store owns one
    mutable entries dict per dictionary and folds deltas into it pointwise —
    ``O(|Δ| labels)`` per application, never a full-map rebuild.  Readers
    get a lazily frozen :class:`~repro.dictionaries.MaterializedDict` view
    that adopts the entries dict without copying; the next delta after a
    read copies the map only if that view is still referenced somewhere
    (the same copy-on-write discipline as
    :class:`~repro.bag.builder.BagBuilder`).
    """

    __slots__ = ("_entries", "_frozen")

    def __init__(self) -> None:
        self._entries: Dict[str, Dict[Label, Bag]] = {}
        self._frozen: Dict[str, Optional[MaterializedDict]] = {}

    def set(self, name: str, dictionary: MaterializedDict) -> None:
        if not isinstance(dictionary, MaterializedDict):
            raise TypeError("DictionaryStore.set requires a MaterializedDict")
        # Adopt the given dictionary's entries as the frozen-shared state;
        # the first delta copies only if the caller still holds it.
        self._entries[name] = dictionary._entries
        self._frozen[name] = dictionary

    def get(self, name: str, default: Optional[MaterializedDict] = None):
        entries = self._entries.get(name)
        if entries is None:
            return default
        return self._freeze(name, entries)

    def _freeze(self, name: str, entries: Dict[Label, Bag]) -> MaterializedDict:
        frozen = self._frozen.get(name)
        if frozen is None:
            frozen = self._frozen[name] = MaterializedDict._adopt(entries)
        return frozen

    def _writable(self, name: str) -> Dict[Label, Bag]:
        entries = self._entries.get(name)
        if entries is None:
            entries = self._entries[name] = {}
            self._frozen[name] = None
            return entries
        if os.environ.get(REPRO_NO_BUILDER):
            # Full-copy escape hatch: reproduce the seed's rebuild-per-merge.
            self._frozen[name] = None
            entries = self._entries[name] = dict(entries)
            return entries
        frozen = self._frozen.get(name)
        if frozen is not None:
            self._frozen[name] = None
            # As in BagBuilder._writable: the entries dict is checked too,
            # so an iterator over a handed-out view keeps its snapshot
            # (references when unshared: our _entries value slot, the frozen
            # view's attribute, the local binding, and getrefcount's
            # argument = 4).
            if (
                _getrefcount is None
                or _getrefcount(frozen) > 2
                or _getrefcount(entries) > 4
            ):
                entries = self._entries[name] = dict(entries)
        return entries

    def apply_delta(self, name: str, delta) -> None:
        if isinstance(delta, MaterializedDict):
            if len(delta) == 0:
                # Keep the name registered (an empty merge used to create
                # the entry) but touch nothing.
                if name not in self._entries:
                    self._entries[name] = {}
                    self._frozen[name] = None
                return
            entries = self._writable(name)
            for label, bag in delta.items():
                existing = entries.get(label)
                # Labels stay in the support even when their bags cancel to
                # empty (``supp([l ↦ ∅]) = {l}``), matching the pointwise
                # ``⊎`` of Section 5.2 exactly.
                entries[label] = bag if existing is None else existing.union(bag)
            return
        # Non-materialized deltas (intensional / lazy combinations) go
        # through the dictionary algebra and re-materialize, as before.
        existing_dict = self.get(name, MaterializedDict({}))
        merged = existing_dict.add(delta)
        if not isinstance(merged, MaterializedDict):
            merged = merged.materialize(merged.support() or ())
        self._entries[name] = merged._entries
        self._frozen[name] = merged

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._entries))

    def as_mapping(self) -> Dict[str, MaterializedDict]:
        return {
            name: self._freeze(name, entries)
            for name, entries in self._entries.items()
        }

    def report(self) -> Dict[str, Any]:
        return {
            "kind": "dictionaries",
            "stores": [
                {"dictionary": name, "labels": len(entries)}
                for name, entries in sorted(self._entries.items())
            ],
        }

    def __repr__(self) -> str:
        return f"DictionaryStore({len(self._entries)} dictionaries)"
