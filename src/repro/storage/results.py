"""Sharded view-result stores: delta-bounded copy-on-write for the read path.

A maintained view's materialization used to live in one
:class:`~repro.bag.builder.BagBuilder`: per-update deltas folded in place and
``result()`` froze the snapshot lazily.  That makes the *write* side O(|Δ|),
but a **retained** snapshot (a serving session pinning
:class:`~repro.engine.EngineSnapshot`, a benchmark holding ``result()``
across updates) forces the next delta to copy the whole result dict —
O(|result|) per write, the read path's mirror of the problem sharding solved
for relation stores in PR 5.

A :class:`ResultStore` applies the same remedy to view results: the
materialization is partitioned into N per-shard builders routed by a stable
hash of the output element (the view's output key — results carry no
registered index, so the whole element *is* the key), a delta is partitioned
once and folded per shard, and the snapshot is a lazily assembled
:class:`~repro.storage.shards.ShardedBag` over the per-shard frozen bags.  A
retained snapshot then copy-on-writes only the shards the next delta
touches: O(t·|result|/N) instead of O(|result|).

Repeated ``freeze()`` calls without an intervening mutation return the *same*
object — the composite is cached, no per-shard freeze runs, and no COW
refcounts move — so an unchanged view's ``result()`` is free (the serving
layer's ETag fast path relies on this identity).  Point reads and iteration
(``multiplicity``/``elements``/``items``) go shard-direct without freezing
anything, which is what keeps the nested view's carrier scans and presence
checks off the snapshot path.

``shards=1`` (or the ``REPRO_SHARDS=1`` escape hatch) collapses to the
pre-PR-8 single-builder behavior bit-for-bit: plain :class:`Bag` snapshots,
one builder, identical COW semantics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.bag.bag import Bag, EMPTY_BAG
from repro.bag.builder import BagBuilder
from repro.storage.shards import ShardedBag, resolve_shard_count

__all__ = ["ResultStore"]


class ResultStore:
    """One view's materialized result, partitioned into per-shard builders.

    The maintenance contract is :class:`~repro.bag.builder.BagBuilder`'s
    (``apply_bag`` folds a delta in place, ``freeze`` hands out the immutable
    snapshot), so view backends swap one in without changing their update
    logic; the store adds shard routing, the cached composite snapshot, and
    the version / freeze accounting the storage reports surface.
    """

    __slots__ = (
        "name",
        "_builders",
        "_shard_count",
        "_version",
        "_composite",
        "_composite_freezes",
    )

    def __init__(
        self, name: str, bag: Bag = EMPTY_BAG, shards: Optional[int] = None
    ) -> None:
        self.name = name
        self._shard_count = resolve_shard_count(shards)
        self._version = 0
        self._composite: Optional[ShardedBag] = None
        self._composite_freezes = 0
        if self._shard_count == 1:
            self._builders = [BagBuilder.from_bag(bag)]
        else:
            self._builders = [BagBuilder() for _ in range(self._shard_count)]
            if not bag.is_empty():
                for position, pairs in self._partition(bag.items()).items():
                    self._builders[position].apply_pairs(pairs)

    # ------------------------------------------------------------------ #
    # Shard routing
    # ------------------------------------------------------------------ #
    @property
    def shards(self) -> int:
        return self._shard_count

    def _partition(self, pairs) -> Dict[int, List[Tuple[Any, int]]]:
        """One O(|pairs|) routing pass: shard id → that shard's pairs."""
        count = self._shard_count
        groups: Dict[int, List[Tuple[Any, int]]] = {}
        for element, multiplicity in pairs:
            groups.setdefault(hash(element) % count, []).append(
                (element, multiplicity)
            )
        return groups

    # ------------------------------------------------------------------ #
    # Maintenance (the BagBuilder contract)
    # ------------------------------------------------------------------ #
    def apply_bag(self, delta: Bag) -> None:
        """Fold a result delta into the touched shards — O(|Δ|).

        The composite snapshot reference is dropped *before* mutating, so a
        snapshot nobody retained dies here and the builders mutate in place;
        a retained one forces copy-on-write of the touched shards only.
        """
        if delta.is_empty():
            return
        self._version += 1
        if self._shard_count == 1:
            self._builders[0].apply_bag(delta)
            return
        self._composite = None
        for position, pairs in self._partition(delta.items()).items():
            self._builders[position].apply_pairs(pairs)

    # ------------------------------------------------------------------ #
    # Snapshots
    # ------------------------------------------------------------------ #
    def freeze(self) -> Bag:
        """The current result as an immutable bag (lazily frozen snapshot).

        Repeated calls without intervening mutation return the identical
        object: single-shard stores reuse the builder's frozen bag, sharded
        stores the cached composite — no per-shard freeze, no COW refcount
        movement, O(1).
        """
        if self._shard_count == 1:
            return self._builders[0].freeze()
        composite = self._composite
        if composite is None:
            composite = self._composite = ShardedBag.of(
                tuple(builder.freeze() for builder in self._builders)
            )
            self._composite_freezes += 1
        return composite

    @property
    def frozen(self) -> Optional[Bag]:
        """The live frozen snapshot, or ``None`` if the store mutated since.

        Deliberately does not force a freeze (mirrors
        :attr:`BagBuilder.frozen` / :meth:`RelationStore.current_snapshot`).
        """
        if self._shard_count == 1:
            return self._builders[0].frozen
        return self._composite

    @property
    def version(self) -> int:
        """Mutation counter: bumps on every applied (non-empty) delta."""
        return self._version

    @property
    def snapshot_freezes(self) -> int:
        """How many distinct immutable snapshots this store materialized."""
        if self._shard_count == 1:
            return self._builders[0].freezes
        return self._composite_freezes

    # ------------------------------------------------------------------ #
    # Shard-direct reads (never freeze anything)
    # ------------------------------------------------------------------ #
    def multiplicity(self, element: Any) -> int:
        if self._shard_count == 1:
            return self._builders[0].multiplicity(element)
        return self._builders[hash(element) % self._shard_count].multiplicity(element)

    def elements(self) -> Iterator[Any]:
        for builder in self._builders:
            yield from builder.elements()

    def items(self) -> Iterator[Tuple[Any, int]]:
        for builder in self._builders:
            yield from builder.items()

    def distinct_size(self) -> int:
        return sum(builder.distinct_size() for builder in self._builders)

    def cardinality(self) -> int:
        return sum(builder.cardinality() for builder in self._builders)

    def is_empty(self) -> bool:
        return all(builder.distinct_size() == 0 for builder in self._builders)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def describe(self) -> Dict[str, Any]:
        description: Dict[str, Any] = {
            "result": self.name,
            "cardinality": self.cardinality(),
            "distinct": self.distinct_size(),
            "version": self._version,
            "snapshot_freezes": self.snapshot_freezes,
            "shards": self._shard_count,
        }
        if self._shard_count > 1:
            description["shard_stats"] = [
                {
                    "shard": position,
                    "distinct": builder.distinct_size(),
                    "cardinality": builder.cardinality(),
                    "snapshot_freezes": builder.freezes,
                }
                for position, builder in enumerate(self._builders)
            ]
        return description

    def __repr__(self) -> str:
        return (
            f"ResultStore({self.name!r}, {self.distinct_size()} distinct, "
            f"{self._shard_count} shards, v{self._version})"
        )
