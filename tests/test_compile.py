"""Differential tests: the compiled pipeline against the strict interpreter.

The interpreter (:mod:`repro.nrc.evaluator`) is the semantic reference; every
test here evaluates the same expression (or maintains the same view) both
ways and requires identical bags — including negative multiplicities, deep
updates and every maintenance strategy.
"""

import pytest

from repro.bag.bag import Bag, EMPTY_BAG
from repro.dictionaries import DictValue
from repro.engine import Engine
from repro.instrument import OpCounter
from repro.ivm import Update
from repro.labels import Label
from repro.nrc import ast
from repro.nrc import builders as build
from repro.nrc import predicates as preds
from repro.nrc.compile import (
    REPRO_NO_COMPILE,
    CompiledQuery,
    compilation_enabled,
    compile_expr,
    try_compile,
)
from repro.nrc.evaluator import Environment, evaluate, evaluate_bag
from repro.delta.rules import delta
from repro.errors import CompileError
from repro.nrc.types import BASE, bag_of
from repro.shredding.context import iter_context_dicts
from repro.shredding.shred_database import build_shredded_environment, input_dict_name
from repro.shredding.shred_query import shred_query
from repro.workloads import (
    MOVIE_SCHEMA,
    bag_of_bags_engine,
    generate_movies,
    genre_selfjoin_query,
    movie_update_stream,
    movies_engine,
    nested_update_stream,
    related_query,
)

MOVIES = generate_movies(60, seed=3)
MOVIE_ENV = Environment(relations={"M": MOVIES})
MOVIE_REL = ast.Relation("M", MOVIE_SCHEMA)

NESTED = Bag([Bag(["a", "b"]), Bag(["b", "c"]), Bag(["a"]), Bag([])])
NESTED_REL = ast.Relation("R", bag_of(bag_of(BASE)))
NESTED_ENV = Environment(relations={"R": NESTED})


def _assert_agree(expr, env):
    compiled = compile_expr(expr)
    assert compiled.evaluate_bag(env) == evaluate_bag(expr, env)


# --------------------------------------------------------------------------- #
# Expression-level equivalence
# --------------------------------------------------------------------------- #
class TestCompiledExpressions:
    def test_filter(self):
        query = build.filter_query(
            MOVIE_REL, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x"
        )
        _assert_agree(query, MOVIE_ENV)

    def test_genre_selfjoin_hash_join(self):
        _assert_agree(genre_selfjoin_query(), MOVIE_ENV)

    def test_join_with_disjunctive_guard_falls_back_to_loop(self):
        condition = preds.Or(
            (
                preds.eq(preds.var_path("m", 1), preds.var_path("m2", 1)),
                preds.eq(preds.var_path("m", 2), preds.var_path("m2", 2)),
            )
        )
        inner = build.for_in("m2", MOVIE_REL, build.proj("m2", 0), condition=condition)
        _assert_agree(ast.For("m", MOVIE_REL, inner), MOVIE_ENV)

    def test_constant_equality_guard(self):
        query = ast.For(
            "m",
            MOVIE_REL,
            build.where(
                preds.eq(preds.var_path("m", 1), preds.const("Drama")),
                build.proj("m", 0),
            ),
        )
        _assert_agree(query, MOVIE_ENV)

    def test_related_query_with_sng(self):
        _assert_agree(related_query(), MOVIE_ENV)

    def test_flatten_product_selfjoin(self):
        query = ast.Product((ast.Flatten(NESTED_REL), ast.Flatten(NESTED_REL)))
        _assert_agree(query, NESTED_ENV)

    def test_let_union_negate(self):
        query = ast.Let(
            "X",
            ast.Flatten(NESTED_REL),
            ast.Union((ast.BagVar("X"), ast.Negate(ast.BagVar("X")), ast.Flatten(NESTED_REL))),
        )
        _assert_agree(query, NESTED_ENV)

    def test_shadowed_variable(self):
        inner = ast.For("m", MOVIE_REL, build.proj("m", 1))
        query = ast.For("m", MOVIE_REL, ast.Union((build.proj("m", 0), inner)))
        _assert_agree(query, MOVIE_ENV)

    def test_delta_of_selfjoin_with_negative_multiplicities(self):
        delta_query = delta(genre_selfjoin_query(), ("M",))
        update = Bag.from_pairs(
            [
                (("Movie000001", "Drama", "Director1"), -1),
                (("Fresh", "Drama", "Director9"), 2),
                (("Gone", "Action", "Director2"), -3),
            ]
        )
        env = MOVIE_ENV.with_deltas({("M", 1): update})
        _assert_agree(delta_query, env)

    def test_empty_delta_produces_empty_change(self):
        delta_query = delta(genre_selfjoin_query(), ("M",))
        env = MOVIE_ENV.with_deltas({("M", 1): EMPTY_BAG})
        assert compile_expr(delta_query).evaluate_bag(env) == EMPTY_BAG

    def test_shredded_flat_and_dictionaries(self):
        shredded = shred_query(related_query())
        env = build_shredded_environment({"M": MOVIES}, {"M": MOVIE_SCHEMA})
        _assert_agree(shredded.flat, env)
        flat = evaluate_bag(shredded.flat, env)
        for _, expression in iter_context_dicts(shredded.context):
            compiled_dict = compile_expr(expression).evaluate(env)
            interpreted_dict = evaluate(expression, env)
            assert isinstance(compiled_dict, DictValue)
            for element in flat.elements():
                parts = element if isinstance(element, tuple) else (element,)
                for part in parts:
                    if isinstance(part, Label):
                        assert compiled_dict.lookup(part) == interpreted_dict.lookup(part)

    def test_free_element_variable_parameters(self):
        # A body with a free variable (as inside a dictionary definition).
        body = build.for_in(
            "m2",
            MOVIE_REL,
            build.proj("m2", 0),
            condition=preds.eq(preds.var_path("m", 1), preds.var_path("m2", 1)),
        )
        env = MOVIE_ENV.copy()
        env.elem_vars["m"] = ("Probe", "Drama", "Nobody")
        _assert_agree(body, env)

    def test_unbound_variable_raises(self):
        from repro.errors import UnboundVariableError

        with pytest.raises(UnboundVariableError):
            compile_expr(ast.SngVar("ghost")).evaluate_bag(Environment())

    def test_guard_binder_does_not_shadow_its_own_predicate(self):
        # Regression: a where-binder whose name collides with an enclosing
        # variable must not shadow it inside the guard predicate — the
        # predicate is the *source* of the binder and is evaluated before
        # the binding exists.
        from repro.nrc.types import BagType, tuple_of

        pairs = Bag([("k1", 0), ("k2", 0)])
        flat = Bag([("k1",)])
        env = Environment(relations={"S": pairs, "R": flat})
        # for y in S union (for x in R union
        #   (for y in Pred(x.0 == y.0) union sng(x)))
        s_node = ast.Relation("S", BagType(tuple_of(BASE, BASE)))
        r_node = ast.Relation("R", BagType(tuple_of(BASE)))
        guard = ast.For(
            "y",
            ast.Pred(preds.eq(preds.var_path("x", 0), preds.var_path("y", 0))),
            ast.SngVar("x"),
        )
        query = ast.For("y", s_node, ast.For("x", r_node, guard))
        _assert_agree(query, env)

    def test_hash_join_rejects_non_base_keys(self):
        # Regression: equality over compound values must raise exactly as
        # the interpreter's comparison rule does, never be hashed silently.
        from repro.errors import EvaluationError
        from repro.nrc.types import BagType, tuple_of

        compound = Bag([(("a", "b"), "x"), (("a", "b"), "y")])
        env = Environment(relations={"T": compound})
        t_node = ast.Relation("T", BagType(tuple_of(tuple_of(BASE, BASE), BASE)))
        inner = build.for_in(
            "u",
            t_node,
            build.proj("u", 1),
            condition=preds.eq(preds.var_path("t", 0), preds.var_path("u", 0)),
        )
        query = ast.For("t", t_node, inner)
        with pytest.raises(EvaluationError):
            evaluate_bag(query, env)
        with pytest.raises(EvaluationError):
            compile_expr(query).evaluate_bag(env)

    def test_hash_join_matches_interpreter_on_nan_keys(self):
        # Regression: NaN is not self-equal, so a dict-backed index must not
        # match it (dict lookup short-circuits on identity); the join falls
        # back to the faithful nested loop.
        from repro.nrc.types import BagType

        values = Bag([float("nan"), 1.0, 2.0])
        env = Environment(relations={"F": values})
        f_node = ast.Relation("F", BagType(BASE))
        inner = build.for_in(
            "y",
            f_node,
            build.tuple_bag(ast.SngVar("x"), ast.SngVar("y")),
            condition=preds.eq(preds.var_path("x"), preds.var_path("y")),
        )
        query = ast.For("x", f_node, inner)
        _assert_agree(query, env)

    def test_guard_rebinding_loop_var_disables_atom_classification(self):
        # Regression: once a guard binder rebinds the loop variable's name
        # (to the unit tuple), later equality conjuncts mentioning that name
        # no longer see the loop element and must not become hash atoms —
        # both paths raise here because () is not a base-comparable value.
        from repro.errors import EvaluationError
        from repro.nrc.types import BagType

        env = Environment(relations={"B": Bag(["a", "b"])})
        b_node = ast.Relation("B", BagType(BASE))
        query = ast.For(
            "x",
            b_node,
            ast.For(
                "x",
                ast.Pred(preds.TruePredicate()),
                ast.For(
                    "w",
                    ast.Pred(preds.eq(preds.var_path("x"), preds.const("a"))),
                    ast.SngUnit(),
                ),
            ),
        )
        with pytest.raises(EvaluationError):
            evaluate_bag(query, env)
        with pytest.raises(EvaluationError):
            compile_expr(query).evaluate_bag(env)

    def test_hash_join_respects_conjunct_short_circuit(self):
        # Regression: when an earlier conjunct is false for every pair, the
        # interpreter never evaluates a later non-base equality; hoisting it
        # into a hash key must not introduce an error — the join degrades to
        # the nested loop instead.
        from repro.nrc.types import BagType, tuple_of

        rows = Bag([("a", Bag(["g"]))])
        env = Environment(relations={"W": rows})
        w_node = ast.Relation("W", BagType(tuple_of(BASE, BASE)))
        condition = preds.And(
            (
                preds.ne(preds.var_path("x", 0), preds.var_path("y", 0)),
                preds.eq(preds.var_path("x", 1), preds.var_path("y", 1)),
            )
        )
        inner = build.for_in("y", w_node, build.proj("y", 0), condition=condition)
        query = ast.For("x", w_node, inner)
        assert evaluate_bag(query, env) == EMPTY_BAG
        assert compile_expr(query).evaluate_bag(env) == EMPTY_BAG


# --------------------------------------------------------------------------- #
# Hash-join work reduction
# --------------------------------------------------------------------------- #
class TestHashJoinWork:
    def test_compiled_delta_does_less_work(self):
        movies = generate_movies(300, seed=11)
        env = Environment(relations={"M": movies})
        delta_query = delta(genre_selfjoin_query(), ("M",))
        update = Bag([("Fresh0", "Drama", "DirectorX"), ("Fresh1", "SciFi", "DirectorY")])
        delta_env = env.with_deltas({("M", 1): update})

        interpreted_counter = OpCounter()
        interpreted = evaluate_bag(delta_query, delta_env, interpreted_counter)
        compiled_counter = OpCounter()
        compiled = compile_expr(delta_query).evaluate_bag(delta_env, compiled_counter)

        assert compiled == interpreted
        # The nested-loop interpreter pays |M|·d predicate checks; the
        # hash-join pays one probe per outer tuple plus the matches, so the
        # loop/predicate work (the part the index removes) collapses.  The
        # emission work (elements actually produced) is identical by design.
        assert compiled_counter.total() < interpreted_counter.total()
        compiled_loop_work = compiled_counter.get("for_iterations") + compiled_counter.get(
            "predicate_checks"
        )
        interpreted_loop_work = interpreted_counter.get(
            "for_iterations"
        ) + interpreted_counter.get("predicate_checks")
        assert compiled_loop_work < interpreted_loop_work / 2
        assert compiled_counter.get("elements_emitted") == interpreted_counter.get(
            "elements_emitted"
        )

    def test_index_reused_across_probes(self):
        movies = generate_movies(100, seed=5)
        env = Environment(relations={"M": movies})
        counter = OpCounter()
        compile_expr(genre_selfjoin_query()).evaluate_bag(env, counter)
        # One build of the inner index, not one per outer tuple.
        assert counter.get("hash_build_entries") == 100
        assert counter.get("hash_probes") == 100


# --------------------------------------------------------------------------- #
# Escape hatch and fallback
# --------------------------------------------------------------------------- #
class TestEscapeHatch:
    def test_no_compile_env_disables_compilation(self, monkeypatch):
        monkeypatch.setenv(REPRO_NO_COMPILE, "1")
        assert not compilation_enabled()
        assert try_compile(ast.SngUnit()) is None

    def test_try_compile_returns_none_for_unknown_nodes(self):
        class Alien(ast.Expr):
            pass

        assert try_compile(Alien()) is None
        with pytest.raises(CompileError):
            compile_expr(Alien())

    def test_views_fall_back_to_interpreter(self, monkeypatch):
        monkeypatch.setenv(REPRO_NO_COMPILE, "1")
        engine = movies_engine(generate_movies(30))
        view = engine.view("join", genre_selfjoin_query(), strategy="classic")
        assert view.execution == "interpreted"
        assert engine.explain("join").execution == "interpreted"


# --------------------------------------------------------------------------- #
# Strategy-level differential maintenance
# --------------------------------------------------------------------------- #
def _maintained_results(strategy, query, stream, monkeypatch, interpreted):
    if interpreted:
        monkeypatch.setenv(REPRO_NO_COMPILE, "1")
    else:
        monkeypatch.delenv(REPRO_NO_COMPILE, raising=False)
    engine = movies_engine(generate_movies(40, seed=9))
    view = engine.view("v", query, strategy=strategy)
    results = []
    for update in stream:
        engine.apply(update)
        results.append(view.result())
    return view, results


@pytest.mark.parametrize("strategy", ["naive", "classic", "recursive", "nested"])
def test_strategies_agree_compiled_vs_interpreted(strategy, monkeypatch):
    query = related_query() if strategy == "nested" else genre_selfjoin_query()
    stream = list(
        movie_update_stream(
            4, 3, existing=generate_movies(40, seed=9), deletion_ratio=0.4, seed=17
        )
    )
    compiled_view, compiled = _maintained_results(strategy, query, stream, monkeypatch, False)
    interpreted_view, interpreted = _maintained_results(strategy, query, stream, monkeypatch, True)
    assert compiled_view.execution == "compiled"
    assert interpreted_view.execution == "interpreted"
    assert compiled == interpreted


@pytest.mark.parametrize("interpreted", [False, True])
def test_nested_strategy_handles_deep_updates(interpreted, monkeypatch):
    if interpreted:
        monkeypatch.setenv(REPRO_NO_COMPILE, "1")
    else:
        monkeypatch.delenv(REPRO_NO_COMPILE, raising=False)
    engine = bag_of_bags_engine(12, 3, seed=21)
    query = build.for_in("x", ast.Relation("R", bag_of(bag_of(BASE))), ast.SngVar("x"))
    view = engine.view("groups", query, strategy="nested")

    dict_name = input_dict_name("R", ())
    dictionary = engine.database.shredded_environment().dictionaries[dict_name]
    labels = sorted(dictionary.support(), key=lambda label: label.render())[:2]
    engine.apply(Update(deep={dict_name: {labels[0]: Bag(["deep-a"]), labels[1]: Bag(["deep-b"])}}))
    engine.apply_stream(nested_update_stream("R", 2, 1, 3, seed=5))

    # The maintained view must agree with direct re-evaluation of the query
    # over the post-update database, whichever execution mode ran.
    expected = evaluate_bag(query, engine.database.environment())
    assert view.result() == expected


def test_compiled_and_interpreted_selfjoin_ops_diverge_superlinearly(monkeypatch):
    """The compiled pipeline's per-update work stays near the match count."""
    stream = list(movie_update_stream(3, 4, seed=29))
    _, _ = _maintained_results("classic", genre_selfjoin_query(), stream, monkeypatch, False)
    monkeypatch.delenv(REPRO_NO_COMPILE, raising=False)
    engine_c = movies_engine(generate_movies(200, seed=9))
    compiled_view = engine_c.view("v", genre_selfjoin_query(), strategy="classic")
    monkeypatch.setenv(REPRO_NO_COMPILE, "1")
    engine_i = movies_engine(generate_movies(200, seed=9))
    interpreted_view = engine_i.view("v", genre_selfjoin_query(), strategy="classic")
    monkeypatch.delenv(REPRO_NO_COMPILE, raising=False)
    for update in stream:
        engine_c.apply(update)
        engine_i.apply(update)
    assert compiled_view.result() == interpreted_view.result()
    assert (
        compiled_view.stats.mean_update_operations
        < interpreted_view.stats.mean_update_operations / 2
    )


# --------------------------------------------------------------------------- #
# Explain / execution reporting
# --------------------------------------------------------------------------- #
class TestExecutionReporting:
    def test_plan_reports_compiled(self):
        engine = movies_engine(generate_movies(20))
        engine.view("join", genre_selfjoin_query(), strategy="classic")
        plan = engine.explain("join")
        assert plan.execution == "compiled"
        assert "execution: compiled" in plan.render()

    def test_handle_repr_mentions_execution(self):
        engine = movies_engine(generate_movies(10))
        handle = engine.view("join", genre_selfjoin_query(), strategy="classic")
        assert "execution=compiled" in repr(handle)

    def test_compiled_query_repr(self):
        compiled = compile_expr(genre_selfjoin_query())
        assert isinstance(compiled, CompiledQuery)
        assert "CompiledQuery" in repr(compiled)
