"""Tests for shredding context trees (the A^Γ structure of Section 5.1)."""

import pytest

from repro.dictionaries import EMPTY_DICT, MaterializedDict
from repro.errors import ShreddingError
from repro.nrc import ast
from repro.nrc.types import BASE, bag_of, tuple_of
from repro.shredding import (
    BagContext,
    EMPTY_CONTEXT,
    TupleContext,
    UNIT_CONTEXT,
    empty_context_for_type,
    iter_context_dicts,
    map_context_dicts,
    merge_contexts,
)


class TestContextShapes:
    def test_empty_context_for_base_type(self):
        assert empty_context_for_type(BASE) == UNIT_CONTEXT

    def test_empty_context_for_nested_type_symbolic(self):
        type_ = tuple_of(BASE, bag_of(BASE))
        context = empty_context_for_type(type_)
        assert isinstance(context, TupleContext)
        assert isinstance(context.components[1], BagContext)
        assert isinstance(context.components[1].dictionary, ast.DictEmpty)

    def test_empty_context_for_nested_type_values(self):
        context = empty_context_for_type(bag_of(bag_of(BASE)), symbolic=False)
        assert isinstance(context, BagContext)
        assert context.dictionary == EMPTY_DICT

    def test_projection(self):
        context = TupleContext((UNIT_CONTEXT, BagContext(EMPTY_DICT, UNIT_CONTEXT)))
        assert isinstance(context.project(1), BagContext)
        assert context.project_path((0,)) == UNIT_CONTEXT
        with pytest.raises(ShreddingError):
            context.project(5)

    def test_unit_context_projects_to_itself(self):
        assert UNIT_CONTEXT.project(3) == UNIT_CONTEXT
        assert EMPTY_CONTEXT.project(3) == EMPTY_CONTEXT


class TestMergingAndMapping:
    def test_empty_context_is_neutral(self):
        other = BagContext(EMPTY_DICT, UNIT_CONTEXT)
        combine = lambda a, b: a
        assert merge_contexts(EMPTY_CONTEXT, other, combine) == other
        assert merge_contexts(other, EMPTY_CONTEXT, combine) == other

    def test_merge_combines_dictionaries(self):
        from repro.labels import Label
        from repro.bag import Bag

        left = BagContext(MaterializedDict({Label("a"): Bag(["x"])}), UNIT_CONTEXT)
        right = BagContext(MaterializedDict({Label("b"): Bag(["y"])}), UNIT_CONTEXT)
        merged = merge_contexts(left, right, lambda a, b: a.label_union(b))
        assert merged.dictionary.support() == {Label("a"), Label("b")}

    def test_merge_shape_mismatch_rejected(self):
        left = TupleContext((UNIT_CONTEXT,))
        right = TupleContext((UNIT_CONTEXT, UNIT_CONTEXT))
        with pytest.raises(ShreddingError):
            merge_contexts(left, right, lambda a, b: a)

    def test_map_context_dicts_keeps_shape(self):
        context = TupleContext((UNIT_CONTEXT, BagContext("dict-A", BagContext("dict-B", UNIT_CONTEXT))))
        mapped = map_context_dicts(context, lambda d: d + "!")
        assert mapped.components[1].dictionary == "dict-A!"
        assert mapped.components[1].element.dictionary == "dict-B!"

    def test_iter_context_dicts_paths(self):
        context = TupleContext(
            (UNIT_CONTEXT, BagContext("outer", TupleContext((UNIT_CONTEXT, BagContext("inner", UNIT_CONTEXT)))))
        )
        entries = list(iter_context_dicts(context))
        assert entries == [((1,), "outer"), ((1, "e", 1), "inner")]
