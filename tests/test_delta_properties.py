"""Property-based checks of Proposition 4.1 on random instances and updates."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bag import Bag
from repro.delta import delta
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.types import BASE, bag_of, tuple_of

MOVIE = tuple_of(BASE, BASE)
M = ast.Relation("M", bag_of(MOVIE))
R = ast.Relation("R", bag_of(bag_of(BASE)))

rows = st.tuples(st.sampled_from("abcd"), st.sampled_from("xyz"))
flat_bags = st.dictionaries(rows, st.integers(-3, 3), max_size=6).map(Bag.from_mapping)
inner_bags = st.lists(st.sampled_from("pqrs"), max_size=3).map(Bag)
nested_bags = st.dictionaries(inner_bags, st.integers(-2, 2), max_size=4).map(Bag.from_mapping)


def assert_prop_41(query, relation_name, instance, update):
    delta_query = delta(query, [relation_name])
    direct = evaluate_bag(query, Environment(relations={relation_name: instance.union(update)}))
    incremental = evaluate_bag(query, Environment(relations={relation_name: instance})).union(
        evaluate_bag(
            delta_query,
            Environment(relations={relation_name: instance}, deltas={(relation_name, 1): update}),
        )
    )
    assert direct == incremental


@settings(max_examples=40, deadline=None)
@given(flat_bags, flat_bags)
def test_filter_delta_correct_on_random_updates(instance, update):
    query = build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("x")), "x")
    assert_prop_41(query, "M", instance, update)


@settings(max_examples=40, deadline=None)
@given(flat_bags, flat_bags)
def test_projection_delta_correct_on_random_updates(instance, update):
    query = ast.For("m", M, ast.SngProj("m", (0,)))
    assert_prop_41(query, "M", instance, update)


@settings(max_examples=25, deadline=None)
@given(flat_bags, flat_bags)
def test_self_product_delta_correct_on_random_updates(instance, update):
    query = ast.Product((M, M))
    assert_prop_41(query, "M", instance, update)


@settings(max_examples=25, deadline=None)
@given(nested_bags, nested_bags)
def test_flatten_delta_correct_on_random_updates(instance, update):
    query = ast.Flatten(R)
    assert_prop_41(query, "R", instance, update)


@settings(max_examples=20, deadline=None)
@given(nested_bags, nested_bags)
def test_selfjoin_delta_correct_on_random_updates(instance, update):
    query = ast.Product((ast.Flatten(R), ast.Flatten(R)))
    assert_prop_41(query, "R", instance, update)


@settings(max_examples=20, deadline=None)
@given(flat_bags, flat_bags, flat_bags)
def test_second_order_delta_correct_on_random_updates(instance, first, second):
    """δ(h)[R ⊎ Δ'R, ΔR] = δ(h)[R, ΔR] ⊎ δ²(h)[R, ΔR, Δ'R] (Section 4.1)."""
    query = ast.Product((M, M))
    first_delta = delta(query, ["M"], order=1)
    second_delta = delta(first_delta, ["M"], order=2)

    lhs = evaluate_bag(
        first_delta,
        Environment(relations={"M": instance.union(second)}, deltas={("M", 1): first}),
    )
    rhs = evaluate_bag(
        first_delta, Environment(relations={"M": instance}, deltas={("M", 1): first})
    ).union(
        evaluate_bag(
            second_delta,
            Environment(relations={"M": instance}, deltas={("M", 1): first, ("M", 2): second}),
        )
    )
    assert lhs == rhs
