"""Tests for workload generators (movies, social feed, random nested data)."""

import pytest

from repro.bag import Bag
from repro.errors import WorkloadError
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.types import BagType
from repro.workloads import (
    MOVIE_SCHEMA,
    PAPER_MOVIES,
    doz_query,
    feed_query,
    generate_bag_of_bags,
    generate_movies,
    generate_nested_bag,
    generate_posts,
    generate_showtimes,
    generate_users,
    movie_update_stream,
    nested_bag_type,
    nested_update_stream,
    post_update_stream,
    related_query,
)


class TestMovieWorkload:
    def test_generate_movies_counts_and_determinism(self):
        movies = generate_movies(100, seed=1)
        assert movies.cardinality() == 100
        assert movies == generate_movies(100, seed=1)
        assert movies != generate_movies(100, seed=2)

    def test_generated_movies_match_the_schema(self):
        movies = generate_movies(10)
        for row in movies.elements():
            assert len(row) == 3
            assert all(isinstance(field, str) for field in row)

    def test_negative_count_rejected(self):
        with pytest.raises(WorkloadError):
            generate_movies(-1)

    def test_generate_showtimes_references_movies(self):
        movies = generate_movies(5)
        shows = generate_showtimes(movies, shows_per_movie=2)
        assert shows.cardinality() == 10
        names = {row[0] for row in movies.elements()}
        assert all(row[0] in names for row in shows.elements())

    def test_update_stream_sizes(self):
        stream = movie_update_stream(4, 3)
        assert len(stream) == 4
        assert all(update.total_size() == 3 for update in stream)

    def test_update_stream_with_deletions(self):
        existing = generate_movies(50)
        stream = movie_update_stream(3, 4, existing=existing, deletion_ratio=1.0)
        merged = stream.merged()
        assert merged.relations["M"].has_negative()

    def test_invalid_batch_size(self):
        with pytest.raises(WorkloadError):
            movie_update_stream(1, 0)

    def test_paper_instance_and_query(self):
        result = evaluate_bag(related_query(), Environment(relations={"M": PAPER_MOVIES}))
        rows = dict(result.elements())
        assert rows["Drive"] == Bag()
        assert rows["Skyfall"] == Bag(["Rush"])

    def test_doz_query_builds(self):
        assert doz_query().schema().columns == ("movie",)


class TestNestedWorkload:
    def test_nested_bag_type_depths(self):
        assert isinstance(nested_bag_type(1), BagType)
        assert nested_bag_type(3).render().count("Bag") == 3
        with pytest.raises(WorkloadError):
            nested_bag_type(0)

    def test_generate_nested_bag_shape(self):
        value = generate_nested_bag(2, top_cardinality=5, inner_cardinality=3)
        assert value.cardinality() == 5
        for element in value.elements():
            assert element[1].cardinality() == 3

    def test_generate_bag_of_bags(self):
        value = generate_bag_of_bags(4, 2)
        assert value.cardinality() <= 4  # equal inner bags may merge
        for inner in value.elements():
            assert isinstance(inner, Bag)

    def test_nested_update_stream(self):
        stream = nested_update_stream("R", 3, 2, 4)
        assert len(stream) == 3
        for update in stream:
            assert set(update.relations) == {"R"}


class TestSocialWorkload:
    def test_generate_users_and_posts(self):
        users = generate_users(20, num_cities=4)
        posts = generate_posts(users, posts_per_user=2)
        assert users.cardinality() == 20
        assert posts.cardinality() == 40

    def test_post_update_stream_requires_users(self):
        with pytest.raises(WorkloadError):
            post_update_stream(Bag(), 1, 1)

    def test_feed_query_results_are_city_local(self):
        users = Bag([("u1", "A"), ("u2", "A"), ("u3", "B")])
        posts = Bag([("u1", "A", "p1"), ("u2", "A", "p2"), ("u3", "B", "p3")])
        result = evaluate_bag(
            feed_query(), Environment(relations={"Users": users, "Posts": posts})
        )
        feeds = dict(result.elements())
        assert feeds["u1"] == Bag(["p2"])
        assert feeds["u3"] == Bag()
