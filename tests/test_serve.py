"""The serving layer: protocol, endpoints, backpressure, lifecycle.

Covers the wire protocol's encode/decode inverses, the JSON
comprehension-spec compiler, JSON-serializability of every introspection
surface (``explain``, ``storage_report``, ``indexes`` — the contract the
server's read endpoints rely on), the HTTP endpoints end to end against a
live :class:`~repro.serve.ReproServer`, deterministic 429 backpressure, and
the graceful-shutdown path (queue drained, ``Engine.close`` joined the
scheduler, sockets gone).
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.bag import Bag
from repro.client.api import APIClient, APIError
from repro.engine import Engine
from repro.serve import (
    BackpressureError,
    Command,
    IngestWorker,
    ProtocolError,
    ReproServer,
    ServerConfig,
)
from repro.serve.protocol import (
    decode_update,
    decode_value,
    encode_bag,
    encode_value,
    fields_spec_of,
    query_from_spec,
    record_from_spec,
)
from repro.workloads import MOVIE_SCHEMA, PAPER_MOVIES, movies_engine, related_query

DRAMAS_SPEC = {
    "from": "M",
    "var": "m",
    "where": ["eq", ["field", "m", "gen"], ["const", "Drama"]],
    "select": [["field", "m", "name"]],
}

RELATED_SPEC = {
    "from": "M",
    "var": "m",
    "select": [
        ["field", "m", "name"],
        [
            "nest",
            {
                "from": "M",
                "var": "m2",
                "where": [
                    "and",
                    ["ne", ["field", "m", "name"], ["field", "m2", "name"]],
                    [
                        "or",
                        ["eq", ["field", "m", "gen"], ["field", "m2", "gen"]],
                        ["eq", ["field", "m", "dir"], ["field", "m2", "dir"]],
                    ],
                ],
                "select": [["field", "m2", "name"]],
            },
        ],
    ],
}


@pytest.fixture
def server():
    with ReproServer(ServerConfig(port=0)) as instance:
        yield instance


@pytest.fixture
def api(server):
    return APIClient(server.url, max_retries=2, sleep=lambda _: None)


# --------------------------------------------------------------------------- #
# Protocol: values, updates, schemas
# --------------------------------------------------------------------------- #
class TestValueCodec:
    def test_flat_and_nested_round_trip(self):
        values = [
            ("Drive", "Drama", "Refn"),
            ("m", Bag([("a",), ("a",), ("b",)])),
            (1, 2.5, True, None, "s"),
            ("outer", Bag([("inner", Bag(["x"]))])),
        ]
        for value in values:
            wire = encode_value(value)
            json_safe = json.loads(json.dumps(wire))
            assert decode_value(json_safe) == value

    def test_encode_bag_carries_sizes(self):
        payload = encode_bag(Bag(["a", "a", "b"]))
        assert payload["distinct"] == 2
        assert payload["cardinality"] == 3
        assert sorted(payload["pairs"]) == [["a", 2], ["b", 1]]

    def test_labels_refuse_decoding(self):
        with pytest.raises(ProtocolError):
            decode_value({"label": "K_1"})

    def test_unknown_wire_object_rejected(self):
        with pytest.raises(ProtocolError):
            decode_value({"mystery": 1})

    def test_decode_update_rows_and_pairs(self):
        update = decode_update(
            {"M": {"rows": [["a", "b", "c"]]}, "F": {"pairs": [[["x", "y"], -2]]}}
        )
        assert update.relations["M"] == Bag([("a", "b", "c")])
        assert update.relations["F"].multiplicity(("x", "y")) == -2

    def test_decode_update_rejects_malformed(self):
        for bad in ({}, {"M": []}, {"M": {"rows": 3}}, {"M": {"pairs": [["a"]]}}):
            with pytest.raises(ProtocolError):
                decode_update(bad)

    def test_record_spec_round_trip(self):
        record = record_from_spec(
            "M", ["name", "gen", {"name": "tags", "bag": ["tag"]}]
        )
        spec = fields_spec_of(record)
        assert spec[0] == "name"
        assert spec[2]["name"] == "tags"
        assert record_from_spec("M", spec).fields[2][0] == "tags"


def _record_engine():
    """An engine whose M dataset is Record-registered (the server's path)."""
    engine = Engine()
    engine.dataset("M", record_from_spec("M", ["name", "gen", "dir"]), PAPER_MOVIES)
    return engine


class TestQuerySpec:
    def test_flat_spec_matches_dsl(self):
        engine = _record_engine()
        datasets = {"M": engine.dataset_handle("M")}
        query = query_from_spec(DRAMAS_SPEC, datasets)
        view = engine.view("dramas", query)
        assert view.result() == Bag(["Drive"])
        engine.insert("M", [("Jarhead", "Drama", "Mendes")])
        assert view.result() == Bag(["Drive", "Jarhead"])

    def test_nested_spec_reproduces_related(self):
        engine = _record_engine()
        datasets = {"M": engine.dataset_handle("M")}
        spec_view = engine.view(
            "related_spec", query_from_spec(RELATED_SPEC, datasets)
        )
        ast_view = engine.view("related_ast", related_query())
        assert spec_view.result() == ast_view.result()

    def test_bad_specs_rejected(self):
        engine = _record_engine()
        datasets = {"M": engine.dataset_handle("M")}
        bad_specs = [
            [],
            {"var": "m"},
            {"from": "NOPE", "var": "m"},
            {"from": "M", "var": ""},
            {"from": "M", "var": "m", "where": ["eq", ["const", 1], ["const", 2]]},
            {"from": "M", "var": "m", "where": ["??", 1, 2]},
            {"from": "M", "var": "m", "select": [["field", "ghost", "name"]]},
            {"from": "M", "var": "m", "surprise": 1},
            {"from": "M", "var": "m", "select": [["nest", {"from": "M", "var": "m"}]]},
        ]
        for spec in bad_specs:
            with pytest.raises(ProtocolError):
                query_from_spec(spec, datasets)


# --------------------------------------------------------------------------- #
# Satellite: introspection surfaces are plain JSON
# --------------------------------------------------------------------------- #
class TestJsonSerializableIntrospection:
    def test_explain_storage_indexes_round_trip(self):
        engine = movies_engine(PAPER_MOVIES)
        engine.view("related", related_query())
        engine.insert("M", [("Jarhead", "Drama", "Mendes")])

        plan = engine["related"].plan.to_dict()
        storage = engine.storage_report()
        indexes = engine["related"].indexes()
        for payload in (plan, storage, indexes):
            assert json.loads(json.dumps(payload)) == payload

    def test_plan_dict_fields(self):
        engine = movies_engine(PAPER_MOVIES)
        engine.view("related", related_query(), strategy="nested")
        plan = engine["related"].plan.to_dict()
        assert plan["view"] == "related"
        assert plan["strategy"] == "nested"
        assert isinstance(plan["query"], str)
        assert {e["strategy"] for e in plan["estimates"]} >= {"naive", "nested"}
        for estimate in plan["estimates"]:
            assert isinstance(estimate["eligible"], bool)


# --------------------------------------------------------------------------- #
# Engine lifecycle (satellite: Engine.close / context manager)
# --------------------------------------------------------------------------- #
class TestEngineLifecycle:
    def test_close_is_idempotent_and_blocks_writes(self):
        engine = movies_engine(PAPER_MOVIES)
        engine.view("related", related_query())
        assert not engine.closed
        engine.close()
        engine.close()
        assert engine.closed
        with pytest.raises(Exception):
            engine.insert("M", [("Jarhead", "Drama", "Mendes")])

    def test_context_manager_closes(self):
        with Engine() as engine:
            engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
            assert not engine.closed
        assert engine.closed

    def test_reads_survive_close(self):
        engine = movies_engine(PAPER_MOVIES)
        view = engine.view("related", related_query())
        result = view.result()
        engine.close()
        assert view.result() == result

    def test_state_version_monotone(self):
        engine = movies_engine(PAPER_MOVIES)
        v0 = engine.state_version
        engine.view("related", related_query())
        v1 = engine.state_version
        engine.insert("M", [("Jarhead", "Drama", "Mendes")])
        v2 = engine.state_version
        assert v0 < v1 < v2
        snapshot = engine.snapshot()
        assert snapshot.version == v2
        assert snapshot.views["related"] == engine["related"].result()


# --------------------------------------------------------------------------- #
# Ingest worker: coalescing + deterministic backpressure
# --------------------------------------------------------------------------- #
class TestIngestWorker:
    def test_coalesces_consecutive_applies(self):
        seen = []
        release = threading.Event()

        def apply_batch(updates):
            seen.append(len(updates))
            return {"applied": len(updates)}

        worker = IngestWorker("t", capacity=16, coalesce=8, apply_batch=apply_batch)
        try:
            worker.submit(Command("block", run=release.wait))
            commands = [
                worker.submit(Command("apply", run=lambda: None, payload=i))
                for i in range(5)
            ]
            release.set()
            results = [command.result(5.0) for command in commands]
            assert seen == [5]
            assert all(result["batched_with"] == 4 for result in results)
            assert worker.stats.coalesced_updates == 4
        finally:
            release.set()
            worker.drain_and_stop()

    def test_backpressure_rejects_at_capacity(self):
        release = threading.Event()
        started = threading.Event()
        worker = IngestWorker(
            "t", capacity=2, coalesce=2, apply_batch=lambda updates: {}
        )
        try:
            worker.submit(
                Command("block", run=lambda: (started.set(), release.wait()))
            )
            assert started.wait(5.0)  # the block left the queue; depth is 0
            worker.submit(Command("apply", run=lambda: None))
            worker.submit(Command("apply", run=lambda: None))
            with pytest.raises(BackpressureError) as info:
                worker.submit(Command("apply", run=lambda: None))
            assert info.value.retry_after > 0
            assert worker.stats.rejected == 1
            # Control commands are still admitted past the bound.
            worker.submit(Command("vacuum", run=lambda: "ok"))
        finally:
            release.set()
            worker.drain_and_stop()

    def test_worker_errors_propagate_to_waiters(self):
        def apply_batch(updates):
            raise ValueError("boom")

        worker = IngestWorker("t", capacity=4, coalesce=4, apply_batch=apply_batch)
        try:
            command = worker.submit(Command("apply", run=lambda: None))
            with pytest.raises(ValueError, match="boom"):
                command.result(5.0)
            assert worker.stats.errors == 1
        finally:
            worker.drain_and_stop()


# --------------------------------------------------------------------------- #
# HTTP endpoints
# --------------------------------------------------------------------------- #
class TestEndpoints:
    def _seed(self, api, tenant="t"):
        api.post(
            f"v1/{tenant}/datasets",
            {
                "name": "M",
                "fields": ["name", "gen", "dir"],
                "rows": [["Drive", "Drama", "Refn"], ["Skyfall", "Action", "Mendes"]],
            },
        )
        api.post(f"v1/{tenant}/views", {"name": "dramas", "query": DRAMAS_SPEC})

    def test_health_and_stats(self, api):
        health = api.get("health")
        assert health["status"] == "ok"
        stats = api.get("stats")
        assert stats["server"]["requests_served"] >= 1

    def test_dataset_view_apply_cycle(self, api):
        self._seed(api)
        applied = api.post(
            "v1/t/apply",
            {"updates": [{"M": {"rows": [["Jarhead", "Drama", "Mendes"]]}}]},
        )
        assert applied["applied"] == 1
        shown = api.get("v1/t/views/dramas")
        assert sorted(tuple(p) for p in shown["pairs"]) == [
            ("Drive", 1),
            ("Jarhead", 1),
        ]
        assert shown["version"] == applied["results"][0]["version"]

    def test_nested_view_over_the_wire(self, api):
        self._seed(api)
        api.post("v1/t/views", {"name": "related", "query": RELATED_SPEC})
        api.post(
            "v1/t/apply",
            {"updates": [{"M": {"rows": [["Jarhead", "Drama", "Mendes"]]}}]},
        )
        shown = api.get("v1/t/views/related")
        by_name = {pair[0][0]: pair[0][1] for pair in shown["pairs"]}
        assert sorted(el for el, _ in by_name["Jarhead"]["bag"]) == [
            "Drive",
            "Skyfall",
        ]

    def test_since_version_short_circuits(self, api):
        self._seed(api)
        first = api.get("v1/t/views/dramas")
        again = api.get(f"v1/t/views/dramas?since_version={first['version']}")
        assert again == {"version": first["version"], "unchanged": True}

    def test_explain_indexes_storage_snapshot(self, api):
        self._seed(api)
        explain = api.get("v1/t/views/dramas/explain")
        assert explain["plan"]["view"] == "dramas"
        indexes = api.get("v1/t/views/dramas/indexes")
        assert isinstance(indexes["indexes"], list)
        storage = api.get("v1/t/storage")
        assert "storage" in storage
        snapshot = api.get("v1/t/snapshot")
        assert set(snapshot["views"]) == {"dramas"}
        assert set(snapshot["datasets"]) == {"M"}

    def test_tenants_are_isolated(self, api):
        self._seed(api, tenant="a")
        with pytest.raises(APIError) as info:
            api.get("v1/b/views/dramas")
        assert info.value.status == 404
        assert "a" in api.get("health")["tenants"]

    def test_error_mapping(self, api):
        with pytest.raises(APIError) as info:
            api.get("v1/t/views/ghost")
        assert (info.value.status, info.value.code) == (404, "not_found")
        with pytest.raises(APIError) as info:
            api.post("v1/t/apply", {"updates": [{"GHOST": {"rows": [["x"]]}}]})
        assert info.value.status == 404
        with pytest.raises(APIError) as info:
            api.post("v1/t/datasets", {"name": "M"})
        assert info.value.status == 400
        with pytest.raises(APIError) as info:
            api.get("nope/nope")
        assert info.value.status == 404

    def test_async_apply_acks_then_applies(self, api):
        self._seed(api)
        accepted = api.post(
            "v1/t/apply",
            {
                "updates": [{"M": {"rows": [["Jarhead", "Drama", "Mendes"]]}}],
                "mode": "async",
            },
        )
        assert accepted["accepted"] == 1
        deadline = [api.get("v1/t/views/dramas") for _ in range(50)]
        assert any(
            ("Jarhead", 1) in [tuple(p) for p in shown["pairs"]] for shown in deadline
        )

    def test_http_429_with_retry_after_under_storm(self, server):
        # Deterministic storm: block the single writer, fill the (tiny)
        # queue with async applies, then watch admission control refuse.
        config = ServerConfig(port=0, queue_depth=2)
        with ReproServer(config) as small:
            api = APIClient(small.url, max_retries=0)
            api.post(
                "v1/t/datasets", {"name": "M", "fields": ["name", "gen", "dir"]}
            )
            session = small.sessions.get("t")
            release = threading.Event()
            started = threading.Event()
            session.worker.submit(
                Command("block", run=lambda: (started.set(), release.wait()))
            )
            assert started.wait(5.0)
            try:
                update = {"M": {"rows": [["X", "Y", "Z"]]}}
                for _ in range(2):
                    api.post(
                        "v1/t/apply", {"updates": [update], "mode": "async"}
                    )
                with pytest.raises(APIError) as info:
                    api.post(
                        "v1/t/apply", {"updates": [update], "mode": "async"}
                    )
                assert info.value.status == 429
                assert info.value.code == "backpressure"
                stats = api.get("stats")["tenants"]["t"]
                assert stats["ingest"]["rejected_backpressure"] >= 1
            finally:
                release.set()

    def test_client_retries_through_backpressure(self, server):
        config = ServerConfig(port=0, queue_depth=1)
        with ReproServer(config) as small:
            naps = []

            def brief_nap(seconds):
                # Record the hint but nap briefly, so the retry loop does
                # not exhaust its budget before the blocker is released.
                naps.append(seconds)
                time.sleep(0.05)

            api = APIClient(small.url, max_retries=20, sleep=brief_nap)
            api.post(
                "v1/t/datasets", {"name": "M", "fields": ["name", "gen", "dir"]}
            )
            session = small.sessions.get("t")
            release = threading.Event()
            started = threading.Event()
            session.worker.submit(
                Command("block", run=lambda: (started.set(), release.wait()))
            )
            assert started.wait(5.0)
            update = {"M": {"rows": [["X", "Y", "Z"]]}}
            api.post("v1/t/apply", {"updates": [update], "mode": "async"})

            results = {}

            def eventually():
                results["applied"] = api.post("v1/t/apply", {"updates": [update]})

            writer = threading.Thread(target=eventually)
            writer.start()
            while not api.retries_performed:
                pass
            release.set()
            writer.join(10.0)
            assert results["applied"]["applied"] == 1
            assert naps and all(nap > 0 for nap in naps)


# --------------------------------------------------------------------------- #
# Graceful shutdown
# --------------------------------------------------------------------------- #
class TestShutdown:
    def test_drain_applies_queued_work_and_closes_engines(self):
        server = ReproServer(ServerConfig(port=0)).start()
        api = APIClient(server.url, max_retries=1)
        api.post(
            "v1/t/datasets",
            {"name": "M", "fields": ["name", "gen", "dir"], "rows": [["A", "B", "C"]]},
        )
        for _ in range(5):
            api.post(
                "v1/t/apply",
                {"updates": [{"M": {"rows": [["X", "Y", "Z"]]}}], "mode": "async"},
            )
        session = server.sessions.get("t")
        engine = session.engine
        server.close(drain=True)

        assert session.worker.depth() == 0
        assert not session.worker.is_alive()
        assert engine.closed
        assert engine.snapshot().datasets["M"].multiplicity(("X", "Y", "Z")) == 5
        with pytest.raises(APIError):
            APIClient(server.url, max_retries=0).get("health")

    def test_close_is_idempotent(self):
        server = ReproServer(ServerConfig(port=0)).start()
        server.close()
        server.close()

    def test_stopped_worker_rejects_submissions(self):
        worker = IngestWorker("t", capacity=4, apply_batch=lambda updates: {})
        assert worker.drain_and_stop()
        with pytest.raises(RuntimeError):
            worker.submit(Command("apply", run=lambda: None))
