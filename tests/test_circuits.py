"""Tests for the circuit substrate: gates, FBag/NStr encodings, NC0 maintenance."""

import pytest

from repro.bag import Bag
from repro.circuits import (
    ActiveDomain,
    Circuit,
    apply_update_circuit,
    build_recompute_circuit,
    build_update_circuit,
    decode_fbag,
    encode_fbag,
    nested_to_symbols,
    symbols_to_position_relation,
)
from repro.errors import CircuitError


class TestGates:
    def test_basic_gate_evaluation(self):
        circuit = Circuit()
        a = circuit.add_input("a")
        b = circuit.add_input("b")
        circuit.mark_output("and", circuit.and_(a, b))
        circuit.mark_output("or", circuit.or_(a, b))
        circuit.mark_output("xor", circuit.xor(a, b))
        circuit.mark_output("not_a", circuit.not_(a))
        outputs = circuit.evaluate({"a": True, "b": False})
        assert outputs == {"and": False, "or": True, "xor": True, "not_a": False}

    def test_majority_gate(self):
        circuit = Circuit()
        bits = [circuit.add_input(f"b{i}") for i in range(3)]
        circuit.mark_output("maj", circuit.add_gate("MAJ", bits))
        assert circuit.evaluate({"b0": True, "b1": True, "b2": False})["maj"] is True
        assert circuit.evaluate({"b0": True, "b1": False, "b2": False})["maj"] is False
        assert circuit.uses_majority()

    def test_bounded_fanin_enforced(self):
        circuit = Circuit()
        bits = [circuit.add_input(f"b{i}") for i in range(3)]
        with pytest.raises(CircuitError):
            circuit.add_gate("AND", bits)

    def test_duplicate_input_rejected(self):
        circuit = Circuit()
        circuit.add_input("a")
        with pytest.raises(CircuitError):
            circuit.add_input("a")

    def test_missing_input_value_rejected(self):
        circuit = Circuit()
        a = circuit.add_input("a")
        circuit.mark_output("out", a)
        with pytest.raises(CircuitError):
            circuit.evaluate({})

    def test_full_adder(self):
        circuit = Circuit()
        a, b, c = (circuit.add_input(name) for name in "abc")
        total, carry = circuit.full_adder(a, b, c)
        circuit.mark_output("sum", total)
        circuit.mark_output("carry", carry)
        for av in (0, 1):
            for bv in (0, 1):
                for cv in (0, 1):
                    out = circuit.evaluate({"a": av, "b": bv, "c": cv})
                    assert int(out["sum"]) + 2 * int(out["carry"]) == av + bv + cv

    def test_adder_mod(self):
        circuit = Circuit()
        a_bits = [circuit.add_input(f"a{i}") for i in range(3)]
        b_bits = [circuit.add_input(f"b{i}") for i in range(3)]
        for index, gate in enumerate(circuit.adder_mod(a_bits, b_bits)):
            circuit.mark_output(f"s{index}", gate)
        inputs = {"a0": 1, "a1": 1, "a2": 0, "b0": 1, "b1": 0, "b2": 1}  # 3 + 5 = 8 ≡ 0 (mod 8)
        outputs = circuit.evaluate(inputs)
        value = sum((1 << i) for i in range(3) if outputs[f"s{i}"])
        assert value == 0

    def test_metrics(self):
        circuit = Circuit()
        a = circuit.add_input("a")
        b = circuit.add_input("b")
        circuit.mark_output("out", circuit.and_(a, b))
        assert circuit.depth() == 1
        assert circuit.gate_count() == 3
        assert circuit.max_cone_size() == 2
        assert circuit.max_fanin() == 2


class TestFBagEncoding:
    domain = ActiveDomain(("a", "b", "c"))

    def test_roundtrip(self):
        bag = Bag.from_pairs([(("a", "b"), 2), (("c", "c"), 1)])
        encoding = encode_fbag(bag, self.domain, arity=2, k=4)
        assert decode_fbag(encoding) == bag
        assert len(encoding.bits) == 9 * 4

    def test_multiplicities_wrap_modulo_2k(self):
        bag = Bag.from_pairs([(("a",), 17)])
        encoding = encode_fbag(bag, self.domain, arity=1, k=4)
        assert decode_fbag(encoding).multiplicity(("a",)) == 1

    def test_domain_from_bag(self):
        bag = Bag([("b", "a"), ("c", "a")])
        domain = ActiveDomain.from_bag(bag)
        assert domain.symbols == ("'a'", "'b'", "'c'") or set(domain.symbols) == {"a", "b", "c"}

    def test_unknown_symbol_rejected(self):
        with pytest.raises(CircuitError):
            encode_fbag(Bag([("z",)]), self.domain, arity=1, k=2)

    def test_arity_mismatch_rejected(self):
        with pytest.raises(CircuitError):
            encode_fbag(Bag([("a", "b")]), self.domain, arity=1, k=2)

    def test_duplicate_domain_symbols_rejected(self):
        with pytest.raises(CircuitError):
            ActiveDomain(("a", "a"))


class TestNStrEncoding:
    def test_example_9_shape(self):
        value = Bag([("a", Bag(["b", "c"])), ("d", Bag(["e", "f"]))])
        symbols = nested_to_symbols(value)
        assert symbols[0] == "{"
        assert symbols[-1] == "}"
        assert symbols.count("⟨") == 2
        assert symbols.count("{") == 3
        relation = symbols_to_position_relation(symbols)
        assert relation.cardinality() == len(symbols)
        assert (1, "{") in relation

    def test_base_value_serialization(self):
        assert nested_to_symbols("x") == ["x"]
        assert nested_to_symbols(("x", "y")) == ["⟨", "x", ",", "y", "⟩"]


class TestMaintenanceCircuits:
    def test_update_circuit_computes_bag_union(self):
        domain = ActiveDomain(("a", "b"))
        view = encode_fbag(Bag.from_pairs([(("a",), 2)]), domain, 1, 4)
        delta = encode_fbag(Bag.from_pairs([(("a",), 1), (("b",), 3)]), domain, 1, 4)
        circuit = build_update_circuit(view.num_slots, 4)
        _, updated = apply_update_circuit(circuit, view, delta)
        assert updated == Bag.from_pairs([(("a",), 3), (("b",), 3)])

    def test_update_circuit_handles_deletions_mod_2k(self):
        domain = ActiveDomain(("a",))
        view = encode_fbag(Bag.from_pairs([(("a",), 3)]), domain, 1, 4)
        # A deletion of 1 is represented as adding 2^k - 1 (mod 2^k arithmetic).
        delta = encode_fbag(Bag.from_pairs([(("a",), 15)]), domain, 1, 4)
        circuit = build_update_circuit(1, 4)
        _, updated = apply_update_circuit(circuit, view, delta)
        assert updated.multiplicity(("a",)) == 2

    def test_update_cone_is_constant_in_database_size(self):
        small = build_update_circuit(4, 3)
        large = build_update_circuit(64, 3)
        assert small.max_cone_size() == large.max_cone_size() == 6
        assert small.depth() == large.depth()

    def test_recompute_cone_grows_with_database_size(self):
        small = build_recompute_circuit(4, 3)
        large = build_recompute_circuit(32, 3)
        assert large.max_cone_size() > small.max_cone_size()
        assert large.max_cone_size() == 32 * 3

    def test_update_circuit_never_uses_majority(self):
        assert not build_update_circuit(8, 4).uses_majority()

    def test_layout_mismatch_rejected(self):
        domain = ActiveDomain(("a",))
        view = encode_fbag(Bag(), domain, 1, 4)
        delta = encode_fbag(Bag(), domain, 1, 2)
        with pytest.raises(CircuitError):
            apply_update_circuit(build_update_circuit(1, 4), view, delta)
