"""Unit tests for the algebraic simplifier and variable substitution."""

from repro.bag import Bag
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.rewrite import rename_elem_var, simplify, substitute_bag_var
from repro.nrc.types import BASE, bag_of, tuple_of

MOVIE = tuple_of(BASE, BASE, BASE)
M = ast.Relation("M", bag_of(MOVIE))


class TestUnionSimplification:
    def test_empty_terms_are_dropped(self):
        assert simplify(ast.Union((M, ast.Empty()))) == M

    def test_all_empty_collapses_to_empty(self):
        assert simplify(ast.Union((ast.Empty(), ast.Empty()))) == ast.Empty()

    def test_nested_unions_are_flattened(self):
        expr = ast.Union((ast.Union((M, M)), M))
        assert simplify(expr) == ast.Union((M, M, M))


class TestProductAndForSimplification:
    def test_product_with_empty_factor(self):
        assert simplify(ast.Product((M, ast.Empty()))) == ast.Empty()

    def test_for_over_empty_source(self):
        assert simplify(ast.For("x", ast.Empty(), ast.SngVar("x"))) == ast.Empty()

    def test_for_with_empty_body(self):
        assert simplify(ast.For("x", M, ast.Empty())) == ast.Empty()

    def test_monad_left_unit(self):
        expr = ast.For("x", ast.SngVar("y"), ast.SngProj("x", (0,)))
        assert simplify(expr) == ast.SngProj("y", (0,))

    def test_dead_unit_binder(self):
        expr = ast.For("w", ast.SngUnit(), M)
        assert simplify(expr) == M


class TestFlattenNegateLet:
    def test_flatten_of_empty(self):
        assert simplify(ast.Flatten(ast.Empty())) == ast.Empty()

    def test_flatten_of_singleton(self):
        assert simplify(ast.Flatten(ast.Sng(M))) == M

    def test_double_negation(self):
        assert simplify(ast.Negate(ast.Negate(M))) == M

    def test_negate_empty(self):
        assert simplify(ast.Negate(ast.Empty())) == ast.Empty()

    def test_unused_let_is_dropped(self):
        expr = ast.Let("X", M, ast.SngUnit())
        assert simplify(expr) == ast.SngUnit()

    def test_cheap_let_is_inlined(self):
        expr = ast.Let("X", M, ast.BagVar("X"))
        assert simplify(expr) == M

    def test_expensive_let_is_kept(self):
        bound = ast.Union((M, M))
        expr = ast.Let("X", bound, ast.Union((ast.BagVar("X"), ast.BagVar("X"))))
        assert isinstance(simplify(expr), ast.Let)


class TestDictionarySimplification:
    def test_dict_union_drops_empties(self):
        d = ast.DictVar("D", bag_of(BASE))
        assert simplify(ast.DictUnion((d, ast.DictEmpty()))) == d

    def test_dict_add_collapses_to_empty(self):
        assert simplify(ast.DictAdd((ast.DictEmpty(), ast.DictEmpty()))) == ast.DictEmpty()


class TestSubstitution:
    def test_rename_elem_var_in_predicate_and_projection(self):
        predicate = preds.eq(preds.var_path("x", 0), preds.const("a"))
        expr = ast.For("w", ast.Pred(predicate), ast.SngProj("x", (0,)))
        renamed = rename_elem_var(expr, "x", "y")
        assert "y" in str(renamed)
        assert "VarPath(var='y'" in repr(renamed)

    def test_rename_respects_shadowing(self):
        inner = ast.For("x", M, ast.SngVar("x"))
        renamed = rename_elem_var(inner, "x", "z")
        assert renamed == inner

    def test_substitute_bag_var(self):
        expr = ast.Union((ast.BagVar("X"), ast.BagVar("Y")))
        substituted = substitute_bag_var(expr, "X", M)
        assert substituted == ast.Union((M, ast.BagVar("Y")))

    def test_substitute_respects_let_shadowing(self):
        expr = ast.Let("X", ast.BagVar("X"), ast.BagVar("X"))
        substituted = substitute_bag_var(expr, "X", M)
        assert substituted == ast.Let("X", M, ast.BagVar("X"))


class TestSemanticsPreservation:
    def test_simplification_preserves_evaluation(self, paper_movies, related):
        from repro.delta import delta

        delta_query = delta(related_to_flat(related), ["M"], auto_simplify=False)
        simplified = simplify(delta_query)
        env = Environment(
            relations={"M": paper_movies},
            deltas={("M", 1): Bag([("Jarhead", "Drama", "Mendes")])},
        )
        assert evaluate_bag(delta_query, env) == evaluate_bag(simplified, env)


def related_to_flat(related_query):
    """A flat IncNRC+ companion of `related` (names of related pairs)."""
    predicate = preds.And(
        (
            preds.ne(preds.var_path("m", 0), preds.var_path("m2", 0)),
            preds.eq(preds.var_path("m", 1), preds.var_path("m2", 1)),
        )
    )
    inner = build.for_in("m2", M, build.proj("m2", 0), condition=predicate)
    return ast.For("m", M, inner)
