"""Sendable execution state: everything a work unit carries survives pickle.

The process and subinterpreter backends ship execution state across an
interpreter boundary: bag snapshots, sharded-store snapshots, updates,
compiled-pipeline descriptions, and codec-encoded pair payloads.  The
contract is that a pickle round-trip preserves **equality and hash
stability** (the receiving side re-hashes with its own seed, so cached
hashes must never travel), including deeply nested values — and that the
one class of value for which pickling genuinely breaks equality (``NaN``,
whose hash is id-based) is *rejected* by the codec rather than silently
diverging.
"""

import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bag.bag import Bag
from repro.bag.codec import (
    UnsendableValueError,
    decode_bag,
    decode_pairs,
    decode_value,
    encode_bag,
    encode_pairs,
    encode_value,
    is_sendable,
)
from repro.ivm import Update
from repro.labels import Label
from repro.nrc.compile import CompiledQuery, rebuild_compiled
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.storage import RelationStore, ShardedBag
from repro.workloads import generate_movies

# Deeply nested, hashable, sendable values: scalars closed under tupling.
scalars = st.one_of(
    st.integers(-100, 100),
    st.text(alphabet="abcxyz", max_size=4),
    st.booleans(),
    st.none(),
    st.floats(allow_nan=False, allow_infinity=True, width=32),
)
values = st.recursive(scalars, lambda inner: st.tuples(inner, inner), max_leaves=8)
multiplicities = st.integers(min_value=-4, max_value=4).filter(bool)
bags = st.dictionaries(values, multiplicities, max_size=8).map(Bag.from_mapping)


def _round_trip(value):
    return pickle.loads(pickle.dumps(value))


# --------------------------------------------------------------------------- #
# Bags and sharded snapshots
# --------------------------------------------------------------------------- #
@settings(max_examples=60)
@given(bags)
def test_bag_pickle_preserves_equality_and_hash(bag):
    copy = _round_trip(bag)
    assert copy == bag
    assert hash(copy) == hash(bag)
    assert copy.cardinality() == bag.cardinality()


@settings(max_examples=40)
@given(bags)
def test_sharded_bag_pickle_preserves_equality_and_hash(bag):
    store = RelationStore("R", bag, shards=4)
    snapshot = store.bag
    if not isinstance(snapshot, ShardedBag):
        pytest.skip("store collapsed to a plain bag")
    copy = _round_trip(snapshot)
    assert copy == snapshot == bag
    assert hash(copy) == hash(snapshot) == hash(bag)


def test_frozen_builder_snapshot_pickles_with_deep_nesting():
    deep = Bag([((("a", (1, (2, (3,)))), "b"), 2), ("leaf", 1)])
    store = RelationStore("R", deep, shards=2)
    copy = _round_trip(store.bag)
    assert copy == deep
    assert hash(copy) == hash(deep)


@settings(max_examples=40)
@given(bags, bags)
def test_update_pickle_preserves_equality(relations_bag, deep_bag):
    label = Label("u.0", ("k",))
    update = Update(
        relations={"R": relations_bag},
        deep={"R__D": {label: deep_bag}},
    )
    copy = _round_trip(update)
    assert copy == update
    assert copy.relations["R"] == relations_bag
    (copy_label,) = copy.deep["R__D"]
    assert copy_label == label and hash(copy_label) == hash(label)


def test_nan_is_exactly_why_the_codec_exists():
    """Pickle silently breaks NaN-keyed bags (id-based hash), so the wire
    codec must reject NaN loudly instead of letting backends diverge."""
    nan_bag = Bag([float("nan")])
    copy = _round_trip(nan_bag)
    # The round-tripped NaN is a new object with a new id-based hash: the
    # copy is *not* equal to the original.  This is the divergence the
    # sendability gate protects the process backend from.
    assert copy != nan_bag
    with pytest.raises(UnsendableValueError):
        encode_bag(nan_bag)
    assert not is_sendable(float("nan"))


# --------------------------------------------------------------------------- #
# The compact binary codec for bag pairs
# --------------------------------------------------------------------------- #
@settings(max_examples=60)
@given(values)
def test_codec_value_round_trip(value):
    assert decode_value(encode_value(value)) == value


@settings(max_examples=60)
@given(bags)
def test_codec_pairs_round_trip(bag):
    pairs = sorted(bag.items(), key=repr)
    assert sorted(decode_pairs(encode_pairs(pairs)), key=repr) == pairs
    assert decode_bag(encode_bag(bag)) == bag


def test_codec_round_trips_labels():
    label = Label("x.1", ("k", 1))
    copy = decode_value(encode_value(label))
    assert copy == label and hash(copy) == hash(label)


def test_codec_rejects_unknown_types():
    class Opaque:
        pass

    with pytest.raises(UnsendableValueError):
        encode_value(Opaque())
    assert not is_sendable(Opaque())


# --------------------------------------------------------------------------- #
# Compiled pipelines rebuild by description
# --------------------------------------------------------------------------- #
def _selfjoin_query():
    from repro.workloads import genre_selfjoin_query

    return genre_selfjoin_query()


def test_compiled_query_pickle_round_trip_is_equal_and_hash_stable():
    compiled = CompiledQuery(_selfjoin_query())
    copy = _round_trip(compiled)
    assert copy == compiled
    assert hash(copy) == hash(compiled)
    # Per-process rebuild cache: a second rebuild of the same description
    # reuses the compiled pipeline instead of recompiling.
    again = _round_trip(compiled)
    assert again is copy or again == copy


def test_rebuilt_pipeline_evaluates_identically():
    compiled = CompiledQuery(_selfjoin_query())
    rebuilt = rebuild_compiled(compiled.describe_pipeline())
    movies = Bag(generate_movies(30, seed=7))
    environment = Environment({"M": movies})
    expected = evaluate_bag(_selfjoin_query(), environment)
    assert compiled.evaluate(environment) == expected
    assert rebuilt.evaluate(environment) == expected


def test_rebuild_rejects_mismatched_descriptions():
    from repro.errors import CompileError

    compiled = CompiledQuery(_selfjoin_query())
    description = compiled.describe_pipeline()
    description = dict(description)
    description["slot_count"] = description["slot_count"] + 7
    with pytest.raises(CompileError):
        rebuild_compiled(description)


def test_description_is_picklable_data():
    description = CompiledQuery(_selfjoin_query()).describe_pipeline()
    copy = _round_trip(description)
    assert copy["slot_count"] == description["slot_count"]
    assert copy["expr"] == description["expr"]
    assert tuple(copy["index_requirements"]) == tuple(description["index_requirements"])


# --------------------------------------------------------------------------- #
# ShardedBag structural ops memoize the merged bag
# --------------------------------------------------------------------------- #
def test_sharded_bag_memoizes_merged_bag():
    store = RelationStore("R", Bag([(f"k{i}", i) for i in range(32)]), shards=4)
    snapshot = store.bag
    assert isinstance(snapshot, ShardedBag)
    first = snapshot.merged()
    second = snapshot.merged()
    assert first is second
    # Structural ops route through the same memo.
    assert snapshot.union(Bag([("extra", 1)])) is not None
    assert snapshot.merged() is first
