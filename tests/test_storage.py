"""The storage layer: persistent join indexes, stores, and the facade surface.

The core property is differential: a view maintained through **persistent
indexes** must produce bit-identical contents to the same view maintained
with **per-evaluation rebuilds** (``REPRO_NO_INDEX``) and to the strict
**interpreter** (``REPRO_NO_COMPILE``), across every strategy, including
negative multiplicities, NaN/unhashable join keys, and deep updates.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bag.bag import Bag, EMPTY_BAG
from repro.ivm import Update
from repro.ivm.database import Database, ShreddedDelta
from repro.nrc import ast
from repro.nrc.compile import compilation_enabled, compile_expr, forced_interpretation
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.types import BASE, bag_of
from repro.shredding.shred_database import input_dict_name
from repro.storage import (
    HashIndex,
    RelationStore,
    StorageManager,
    forced_no_index,
    persistent_indexes_enabled,
)
from repro.workloads import (
    FEATURED_SCHEMA,
    MOVIE_SCHEMA,
    bag_of_bags_engine,
    featured_join_query,
    featured_update_stream,
    generate_movies,
    genre_selfjoin_query,
    movie_update_stream,
    movies_engine,
    nested_update_stream,
)

STRATEGIES = ("naive", "classic", "recursive", "nested")

#: Tests that introspect index registration rely on the *ambient* execution
#: mode: with REPRO_NO_COMPILE set there are no compiled queries and hence,
#: correctly, no index requirements to observe.  (Differential tests scope
#: their modes with forced_interpretation/forced_no_index and always run.)
requires_compilation = pytest.mark.skipif(
    not compilation_enabled(),
    reason="persistent-index registration requires the compiled pipeline",
)


# --------------------------------------------------------------------------- #
# HashIndex unit behavior
# --------------------------------------------------------------------------- #
class TestHashIndex:
    def test_apply_matches_fresh_rebuild(self):
        base = Bag([("a", 1, "x"), ("b", 1, "y"), ("c", 2, "z")])
        index = HashIndex(((1,),), base)
        delta = Bag.from_pairs([(("d", 2, "w"), 2), (("a", 1, "x"), -1)])
        index.apply(delta)
        fresh = HashIndex(((1,),), base.union(delta))
        assert {k: dict(b) for k, b in index._buckets.items()} == {
            k: dict(b) for k, b in fresh._buckets.items()
        }

    def test_cancellation_drops_entries_and_buckets(self):
        base = Bag([("a", 1)])
        index = HashIndex(((1,),), base)
        index.apply(Bag.from_pairs([(("a", 1), -1)]))
        assert len(index) == 0
        assert index.entry_count() == 0

    def test_nan_key_poisons(self):
        index = HashIndex(((1,),), Bag([("a", 1)]))
        index.apply(Bag([("b", float("nan"))]))
        assert index.poisoned
        assert index.get((1,)) is None

    def test_non_base_key_poisons(self):
        index = HashIndex(((1,),))
        index.apply(Bag([("a", ("compound", "key"))]))
        assert index.poisoned

    def test_projection_failure_poisons(self):
        index = HashIndex(((5,),))
        index.apply(Bag([("too", "short")]))
        assert index.poisoned

    def test_rebuild_clears_poison(self):
        index = HashIndex(((1,),), Bag([("a", float("nan"))]))
        assert index.poisoned
        index.rebuild(Bag([("a", 1)]))
        assert not index.poisoned
        assert dict(index.get((1,))) == {("a", 1): 1}

    def test_probe_shape_matches_compiled_build(self):
        index = HashIndex(((0,), (1,)), Bag.from_pairs([(("k", 2), 3)]))
        bucket = index.get(("k", 2))
        assert list(bucket) == [(("k", 2), 3)]
        assert index.hits == 1
        assert index.get(("missing", 0)) is None

    @given(
        st.lists(
            st.tuples(
                st.tuples(st.text("ab", max_size=2), st.integers(0, 3)),
                st.integers(-3, 3),
            ),
            max_size=20,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_incremental_equals_rebuild_property(self, pairs):
        """Folding deltas one at a time equals one rebuild of the final bag."""
        index = HashIndex(((1,),), EMPTY_BAG)
        total = EMPTY_BAG
        for element, multiplicity in pairs:
            delta = Bag.from_pairs([(element, multiplicity)])
            index.apply(delta)
            total = total.union(delta)
        fresh = HashIndex(((1,),), total)
        assert {k: dict(b) for k, b in index._buckets.items()} == {
            k: dict(b) for k, b in fresh._buckets.items()
        }


# --------------------------------------------------------------------------- #
# Stores
# --------------------------------------------------------------------------- #
class TestRelationStore:
    def test_apply_delta_updates_bag_and_indexes(self):
        store = RelationStore("R", Bag([("a", 1)]))
        index = store.ensure_index(((1,),))
        store.apply_delta(Bag([("b", 1)]))
        assert store.bag.multiplicity(("b", 1)) == 1
        assert dict(index.get((1,))) == {("a", 1): 1, ("b", 1): 1}
        assert index.deltas_applied == 1

    def test_replace_rebuilds_indexes(self):
        store = RelationStore("R", Bag([("a", 1)]))
        index = store.ensure_index(((1,),))
        before = index.rebuilds
        store.replace(Bag([("z", 9)]))
        assert index.rebuilds == before + 1
        assert dict(index.get((9,))) == {("z", 9): 1}

    def test_manager_provider_identity_check(self):
        manager = StorageManager()
        manager.ensure("R", Bag([("a", 1)]))
        index = manager.ensure_index("R", ((1,),))
        provider = manager.provider()
        assert provider.probe("R", ((1,),), manager.bag("R")) is index
        # A different (even equal-valued) bag must not be served.
        assert provider.probe("R", ((1,),), Bag([("a", 1)])) is None
        assert provider.probe("missing", ((1,),), manager.bag("R")) is None

    def test_no_index_escape_hatch(self):
        manager = StorageManager()
        manager.ensure("R", Bag([("a", 1)]))
        with forced_no_index():
            assert not persistent_indexes_enabled()
            assert manager.ensure_index("R", ((1,),)) is None
        assert persistent_indexes_enabled()

    def test_no_index_hatch_also_gates_probing(self):
        """The hatch is dynamic: indexes registered *before* it is set are
        not served while it is active (no leak-in on shared engines)."""
        manager = StorageManager()
        manager.ensure("R", Bag([("a", 1)]))
        index = manager.ensure_index("R", ((1,),))
        provider = manager.provider()
        with forced_no_index():
            assert provider.probe("R", ((1,),), manager.bag("R")) is None
        assert provider.probe("R", ((1,),), manager.bag("R")) is index


# --------------------------------------------------------------------------- #
# Differential maintenance: indexed vs rebuild vs interpreter
# --------------------------------------------------------------------------- #
def _maintain(strategy, query, base, stream, schema=MOVIE_SCHEMA):
    engine = movies_engine(base, expected_update_size=4)
    view = engine.view("v", query, strategy=strategy)
    engine.apply_stream(stream)
    return view


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_selfjoin_three_modes_agree(strategy):
    base = generate_movies(50, seed=5)
    stream = movie_update_stream(4, 3, existing=base, deletion_ratio=0.4, seed=9)
    with forced_interpretation(False), forced_no_index(False):
        indexed = _maintain(strategy, genre_selfjoin_query(), base, stream)
    with forced_interpretation(False), forced_no_index(True):
        rebuilt = _maintain(strategy, genre_selfjoin_query(), base, stream)
    with forced_interpretation(True):
        interpreted = _maintain(strategy, genre_selfjoin_query(), base, stream)
    assert indexed.result() == rebuilt.result() == interpreted.result()
    # The final state equals direct evaluation over the post-update database.
    post = Bag(base)
    for update in stream:
        post = post.union(update.relations["M"])
    assert indexed.result() == evaluate_bag(
        genre_selfjoin_query(), Environment(relations={"M": post})
    )


@pytest.mark.parametrize("strategy", ("classic", "recursive", "nested"))
@requires_compilation
def test_indexed_run_actually_probes_persistent_index(strategy):
    base = generate_movies(40, seed=5)
    stream = movie_update_stream(3, 2, seed=9)
    view = _maintain(strategy, genre_selfjoin_query(), base, stream)
    report = view.indexes()
    assert report, "equality-join view should have index requirements"
    assert any(entry["registered"] and entry["hits"] > 0 for entry in report)
    assert all(entry["deltas_applied"] >= 0 for entry in report if entry["registered"])


def test_nan_join_keys_poison_but_never_diverge():
    nan = float("nan")
    base = Bag([("a", 1.0, "d"), ("n", nan, "d"), ("b", 1.0, "d")])
    stream = [
        Update(relations={"M": Bag.from_pairs([(("c", 1.0, "e"), 1)])}),
        Update(relations={"M": Bag.from_pairs([(("n2", nan, "e"), 1), (("a", 1.0, "d"), -1)])}),
    ]
    def run(interpreted, no_index):
        with forced_interpretation(interpreted), forced_no_index(no_index):
            engine = movies_engine(Bag(base))
            view = engine.view("v", genre_selfjoin_query(), strategy="classic")
            for update in stream:
                engine.apply(update)
            return view
    indexed = run(False, False)
    rebuilt = run(False, True)
    interpreted = run(True, False)
    assert indexed.result() == rebuilt.result() == interpreted.result()
    # NaN is not self-equal: it must never match itself through the index.
    assert all(not (isinstance(p, float) and math.isnan(p)) for pair in indexed.result().elements() for p in pair)
    report = indexed.indexes()
    assert any(entry["registered"] and entry["poisoned"] for entry in report)


def test_deep_updates_three_modes_agree():
    def run(interpreted, no_index):
        with forced_interpretation(interpreted), forced_no_index(no_index):
            engine = bag_of_bags_engine(12, 3, seed=47)
            relation = ast.Relation("R", bag_of(bag_of(BASE)))
            query = ast.For("x", relation, ast.Sng(ast.For("y", ast.SngVar("x"), ast.SngVar("y"))))
            view = engine.view("v", query, strategy="nested")
            dict_name = input_dict_name("R", ())
            dictionary = engine.database.shredded_environment().dictionaries[dict_name]
            labels = sorted(dictionary.support(), key=lambda l: l.render())[:2]
            engine.apply(
                Update(deep={dict_name: {label: Bag([f"deep-{i}"]) for i, label in enumerate(labels)}})
            )
            engine.apply_stream(nested_update_stream("R", 2, 1, 3, seed=53))
            return view.result()
    assert run(False, False) == run(False, True) == run(True, False)


def test_stale_environment_is_never_served_by_the_index():
    """Hand-mutated environments fall back to per-evaluation builds."""
    engine = movies_engine(generate_movies(30, seed=3))
    engine.view("v", genre_selfjoin_query(), strategy="classic")
    compiled = compile_expr(genre_selfjoin_query())
    env = engine.database.environment()
    # Swap in a post-update bag the store has never seen; the provider's
    # identity check must route around the (now stale) persistent index.
    env.relations["M"] = env.relations["M"].union(Bag([("Fresh", "Drama", "Dir")]))
    assert compiled.evaluate_bag(env) == evaluate_bag(
        genre_selfjoin_query(), Environment(relations={"M": env.relations["M"]})
    )


@requires_compilation
def test_escaped_dictionary_lookups_see_their_environment_snapshot():
    """An intensional dictionary that outlives its evaluation must keep
    answering from the environment it closed over, even though the
    persistent index it was first validated against mutates in place as the
    store applies later deltas (the interpreter's closed-over-environment
    semantics)."""
    from repro.nrc import builders as build
    from repro.nrc import predicates as preds
    from repro.labels import Label
    from repro.nrc.evaluator import evaluate

    database = Database()
    database.register("M", MOVIE_SCHEMA, Bag([("a", "g1", "d1")]))
    body = build.for_in(
        "m",
        ast.Relation("M", MOVIE_SCHEMA),
        build.proj("m", 0),
        condition=preds.eq(preds.var_path("m", 1), preds.var_path("p")),
    )
    expr = ast.DictSingleton("D", ("p",), body)
    compiled = compile_expr(expr)
    assert compiled.index_requirements, "the join over M should be indexable"
    database.register_index_requirements(compiled.index_requirements)

    env = database.environment()
    dictionary = compiled.evaluate(env)
    label = Label("D", ("g1",))
    before = dictionary.lookup(label)
    assert before == Bag(["a"])
    # The store moves on; the escaped dictionary must not see it.
    database.apply_update(Update(relations={"M": Bag([("b", "g1", "d2")])}))
    assert dictionary.lookup(label) == before
    # ... exactly as the interpreter's dictionary over the same snapshot.
    assert evaluate(expr, env).lookup(label) == before


@requires_compilation
def test_vacuum_revalidates_poisoned_indexes():
    nan = float("nan")
    engine = movies_engine(generate_movies(10, seed=3))
    view = engine.view("v", genre_selfjoin_query(), strategy="classic")
    engine.apply({"M": [("bad", nan, "d")]})
    assert any(entry["registered"] and entry["poisoned"] for entry in view.indexes())
    # While the bad key is still present, vacuum cannot heal the index.
    engine.vacuum()
    assert any(entry["poisoned"] for entry in view.indexes())
    engine.apply({"M": {("bad", nan, "d"): -1}})
    engine.vacuum()
    report = view.indexes()
    assert all(not entry["poisoned"] for entry in report if entry["registered"])
    # ... and it serves probes again.
    hits_before = sum(entry["hits"] for entry in report if entry["registered"])
    engine.apply({"M": [("fine", "Drama", "d")]})
    hits_after = sum(
        entry["hits"] for entry in view.indexes() if entry["registered"]
    )
    assert hits_after > hits_before
    with forced_interpretation(True):
        engine2 = movies_engine(generate_movies(10, seed=3))
        view2 = engine2.view("v", genre_selfjoin_query(), strategy="classic")
        for update in (
            {"M": [("bad", nan, "d")]},
            {"M": {("bad", nan, "d"): -1}},
            {"M": [("fine", "Drama", "d")]},
        ):
            engine2.apply(update)
    assert view.result() == view2.result()


@given(
    st.lists(
        st.lists(
            st.tuples(
                st.sampled_from(["m0", "m1", "m2", "m3", "m4", "m5"]),
                st.sampled_from(["g0", "g1"]),
                st.sampled_from(["d0", "d1"]),
                st.integers(-2, 2),
            ),
            min_size=1,
            max_size=3,
        ),
        max_size=4,
    )
)
@settings(max_examples=25, deadline=None)
def test_random_update_streams_property(batches):
    """Random mixed-sign streams: indexed == unindexed == interpreter."""
    base = Bag([("m0", "g0", "d0"), ("m1", "g1", "d0"), ("m2", "g0", "d1")])
    updates = [
        Update(relations={"M": Bag.from_pairs([(row[:3], row[3]) for row in batch])})
        for batch in batches
    ]
    def run(interpreted, no_index):
        with forced_interpretation(interpreted), forced_no_index(no_index):
            engine = movies_engine(Bag(base))
            view = engine.view("v", genre_selfjoin_query(), strategy="classic")
            for update in updates:
                engine.apply(update)
            return view.result()
    assert run(False, False) == run(False, True) == run(True, False)


# --------------------------------------------------------------------------- #
# ShreddedDelta: no-op flat bags are dropped (PR 2's is_empty mirror)
# --------------------------------------------------------------------------- #
class TestShreddedDeltaNoOps:
    def test_empty_flat_bags_dropped_from_delta_symbols(self):
        delta = ShreddedDelta(bags={"R__F": EMPTY_BAG, "S__F": Bag(["x"])})
        symbols = delta.as_delta_symbols()
        assert ("R__F", 1) not in symbols
        assert symbols[("S__F", 1)] == Bag(["x"])

    def test_cancelled_flat_bag_dropped(self):
        cancelled = Bag(["a"]).union(Bag(["a"]).negate())
        delta = ShreddedDelta(bags={"R__F": cancelled})
        assert delta.as_delta_symbols() == {}
        # source_names still reports the touched relation for diagnostics.
        assert delta.source_names() == ("R__F",)


# --------------------------------------------------------------------------- #
# Engine facade: pairs form, batched streams, vacuum, reporting
# --------------------------------------------------------------------------- #
class TestEngineFacade:
    def test_apply_iterable_form_inserts(self):
        engine = movies_engine(Bag([("a", "g", "d")]))
        engine.apply({"M": [("b", "g", "d")]})
        assert engine.relation("M").multiplicity(("b", "g", "d")) == 1

    def test_apply_pairs_form_mixed_delta(self):
        engine = movies_engine(Bag([("a", "g", "d"), ("b", "g", "d")]))
        view = engine.view("v", genre_selfjoin_query(), strategy="classic")
        engine.apply({"M": {("a", "g", "d"): -1, ("c", "g", "d"): 2}})
        relation = engine.relation("M")
        assert relation.multiplicity(("a", "g", "d")) == 0
        assert relation.multiplicity(("c", "g", "d")) == 2
        assert view.result() == evaluate_bag(
            genre_selfjoin_query(), Environment(relations={"M": relation})
        )

    def test_apply_rejects_non_mapping(self):
        engine = movies_engine(Bag())
        with pytest.raises(TypeError):
            engine.apply([("a", "g", "d")])

    def test_batched_stream_equals_sequential(self):
        base = generate_movies(30, seed=3)
        stream = list(movie_update_stream(4, 2, existing=base, deletion_ratio=0.5, seed=11))
        sequential = movies_engine(Bag(base))
        view_seq = sequential.view("v", genre_selfjoin_query(), strategy="classic")
        assert sequential.apply_stream(stream) == 4
        batched = movies_engine(Bag(base))
        view_bat = batched.view("v", genre_selfjoin_query(), strategy="classic")
        assert batched.apply_stream(stream, batched=True) == 4
        assert view_seq.result() == view_bat.result()
        # One combined delta: a single refresh instead of one per update.
        assert view_bat.stats.updates_applied == 1
        assert view_seq.stats.updates_applied == 4

    def test_batched_cancelling_stream_is_a_noop(self):
        engine = movies_engine(Bag([("a", "g", "d")]))
        view = engine.view("v", genre_selfjoin_query(), strategy="classic")
        engine.apply_stream(
            [{"M": [("x", "g", "d")]}, {"M": {("x", "g", "d"): -1}}], batched=True
        )
        assert view.stats.updates_applied == 0
        assert engine.relation("M").multiplicity(("x", "g", "d")) == 0

    def test_vacuum_reclaims_nested_labels(self):
        from repro.workloads import PAPER_MOVIES, related_query

        engine = movies_engine(Bag(PAPER_MOVIES))
        engine.view("nested", related_query(), strategy="nested")
        engine.view("flat", genre_selfjoin_query(), strategy="classic")
        # Deleting a movie (pairs form) orphans its related-movies label.
        engine.apply({"M": {("Drive", "Drama", "Refn"): -1}})
        reclaimed = engine.vacuum()
        # Only backends that support vacuuming appear; counts are >= 0.
        assert "flat" not in reclaimed
        assert reclaimed.get("nested", 0) >= 1

    @requires_compilation
    def test_explain_and_storage_report_surface_indexes(self):
        engine = movies_engine(generate_movies(20, seed=3))
        engine.view("v", genre_selfjoin_query(), strategy="classic")
        plan = engine.explain("v")
        assert any("persistent" in entry for entry in plan.indexes)
        assert "indexes" in plan.render()
        report = engine.storage_report()
        nested_stores = {s["relation"]: s for s in report["nested"]["stores"]}
        assert nested_stores["M"]["indexes"], "M should carry a persistent index"
        assert {"nested", "flat", "dictionaries"} <= set(report)

    @requires_compilation
    def test_no_index_views_report_per_evaluation(self):
        with forced_no_index():
            engine = movies_engine(generate_movies(20, seed=3))
            view = engine.view("v", genre_selfjoin_query(), strategy="classic")
        assert all(not entry["registered"] for entry in view.indexes())
        plan = engine.explain("v")
        assert any("per-evaluation" in entry for entry in plan.indexes)

    @requires_compilation
    def test_featured_join_with_targets_hits_index(self):
        engine = movies_engine(generate_movies(40, seed=7))
        engine.dataset("F", FEATURED_SCHEMA, Bag([("Movie000001", "s0")]))
        view = engine.view(
            "featured", featured_join_query(), strategy="classic", targets=("F",)
        )
        engine.apply_stream(
            featured_update_stream(3, 2, catalog_size=40, deletion_ratio=0.3, seed=7)
        )
        report = view.indexes()
        assert any(
            entry["relation"] == "M" and entry["registered"] and entry["hits"] > 0
            for entry in report
        )
        with forced_interpretation(True):
            engine2 = movies_engine(generate_movies(40, seed=7))
            engine2.dataset("F", FEATURED_SCHEMA, Bag([("Movie000001", "s0")]))
            view2 = engine2.view(
                "featured", featured_join_query(), strategy="classic", targets=("F",)
            )
            engine2.apply_stream(
                featured_update_stream(3, 2, catalog_size=40, deletion_ratio=0.3, seed=7)
            )
        assert view.result() == view2.result()
