"""Replication: WAL shipping, epoch fencing, failover, follower reads.

Covers the feed primitives (framed reads, byte-mirror appends, rotation
and torn-tail handling, pruned/diverged detection, bootstrap packaging),
epoch persistence through the replication state file and checkpoint
manifests, standby engines fed through the replay path, the HTTP
replication surface end to end (convergence, coherent ETags, 503
``not_writable`` rejections, promotion and fencing), the SDK's
``FailoverClient``, and the ``APIClient`` total retry deadline.
"""

from __future__ import annotations

import os
import socket
import time

import pytest

from repro.client.api import APIClient, APIError
from repro.client.failover import FailoverClient
from repro.client.resources import ReplicationClient, ViewsClient
from repro.durability import WriteAheadLog
from repro.durability.checkpoint import list_checkpoints, read_manifest
from repro.durability.faults import engine_state, state_differences
from repro.durability.manager import load_replication_state
from repro.engine import Engine
from repro.errors import EngineError, ReproError
from repro.replication import (
    ReplicationError,
    append_mirror_frames,
    count_lag,
    decode_frames,
    encode_frames,
    frame_payload,
    install_bootstrap,
    normalize_position,
    package_bootstrap,
    read_frames,
    wal_end_position,
)
from repro.serve import ReproServer, ServerConfig
from repro.workloads import MOVIE_SCHEMA, PAPER_MOVIES, movie_update_stream, related_query


# --------------------------------------------------------------------------- #
# Feed primitives
# --------------------------------------------------------------------------- #
class TestFeed:
    def _fill(self, wal_dir: str, payloads, segment_bytes: int = 1 << 20) -> None:
        wal = WriteAheadLog(wal_dir, fsync="batch", segment_bytes=segment_bytes)
        for payload in payloads:
            wal.append(payload)
            wal.sync()
        wal.close()

    def test_read_and_mirror_round_trip(self, tmp_path):
        source = str(tmp_path / "src")
        mirror = str(tmp_path / "dst")
        payloads = [b"alpha", b"", b"gamma" * 100]
        self._fill(source, payloads)
        chunk = read_frames(source, 1, 8)
        assert chunk.status == "ok"
        assert [frame_payload(raw) for _, _, raw in chunk.frames] == payloads
        end = append_mirror_frames(mirror, chunk.frames)
        assert end == wal_end_position(source) == wal_end_position(mirror)
        with open(os.path.join(source, os.listdir(source)[0]), "rb") as handle:
            original = handle.read()
        with open(os.path.join(mirror, os.listdir(mirror)[0]), "rb") as handle:
            assert handle.read() == original

    def test_mirror_redelivery_is_idempotent(self, tmp_path):
        source, mirror = str(tmp_path / "src"), str(tmp_path / "dst")
        self._fill(source, [b"one", b"two"])
        chunk = read_frames(source, 1, 8)
        first = append_mirror_frames(mirror, chunk.frames)
        again = append_mirror_frames(mirror, chunk.frames)
        assert first == again == wal_end_position(source)

    def test_mirror_rejects_gaps(self, tmp_path):
        source, mirror = str(tmp_path / "src"), str(tmp_path / "dst")
        self._fill(source, [b"one", b"two", b"three"])
        frames = read_frames(source, 1, 8).frames
        with pytest.raises(ReplicationError):
            append_mirror_frames(mirror, frames[2:])

    def test_tail_across_rotation_boundary(self, tmp_path):
        """A subscriber polling ``next`` positions crosses sealed segments
        without skipping or duplicating a record."""
        source = str(tmp_path / "src")
        payloads = [bytes([65 + i]) * 40 for i in range(8)]
        self._fill(source, payloads, segment_bytes=64)
        segment, offset = 1, 8
        collected = []
        for _ in range(50):
            chunk = read_frames(source, segment, offset, max_bytes=64)
            assert chunk.status == "ok"
            collected.extend(frame_payload(raw) for _, _, raw in chunk.frames)
            if not chunk.frames:
                break
            segment, offset = chunk.next
        assert collected == payloads
        # Parked one past the newest segment: still "ok", nothing to ship.
        parked = read_frames(source, segment, offset)
        assert parked.status == "ok" and parked.frames == []

    def test_position_at_sealed_eof_normalizes_forward(self, tmp_path):
        source = str(tmp_path / "src")
        self._fill(source, [b"x" * 48] * 4, segment_bytes=64)
        segments = sorted(
            int(name.split("-")[1].split(".")[0]) for name in os.listdir(source)
        )
        first_size = os.path.getsize(
            os.path.join(source, f"wal-{segments[0]:08d}.log")
        )
        assert normalize_position(source, segments[0], first_size) == (
            segments[0] + 1,
            8,
        )

    def test_torn_tail_is_not_served(self, tmp_path):
        source = str(tmp_path / "src")
        self._fill(source, [b"whole", b"torn-away"])
        path = os.path.join(source, sorted(os.listdir(source))[-1])
        with open(path, "r+b") as handle:
            handle.truncate(os.path.getsize(path) - 3)
        chunk = read_frames(source, 1, 8)
        assert chunk.status == "ok"
        assert [frame_payload(raw) for _, _, raw in chunk.frames] == [b"whole"]

    def test_pruned_and_diverged_statuses(self, tmp_path):
        source = str(tmp_path / "src")
        self._fill(source, [b"x" * 48] * 4, segment_bytes=64)
        oldest = sorted(os.listdir(source))[0]
        os.unlink(os.path.join(source, oldest))
        assert read_frames(source, 1, 8).status == "pruned"
        newest = max(
            int(name.split("-")[1].split(".")[0]) for name in os.listdir(source)
        )
        assert read_frames(source, newest + 7, 8).status == "diverged"

    def test_count_lag_and_wire_codec(self, tmp_path):
        source = str(tmp_path / "src")
        self._fill(source, [b"aa", b"bb", b"cc"])
        records, lag_bytes = count_lag(source, (1, 8))
        assert records == 3 and lag_bytes > 0
        assert count_lag(source, wal_end_position(source)) == (0, 0)
        frames = read_frames(source, 1, 8).frames
        assert decode_frames(encode_frames(frames)) == frames
        corrupted = encode_frames(frames)
        import base64

        raw = bytearray(base64.b64decode(corrupted[0]["data"]))
        raw[-1] ^= 0xFF
        corrupted[0]["data"] = base64.b64encode(bytes(raw)).decode("ascii")
        with pytest.raises(ReplicationError):
            decode_frames(corrupted)


# --------------------------------------------------------------------------- #
# Epochs, fencing, promotion (engine level)
# --------------------------------------------------------------------------- #
class TestEpochs:
    def test_epoch_persists_across_reopen(self, tmp_path):
        data_dir = str(tmp_path / "db")
        engine = Engine(data_dir=data_dir)
        engine.set_replication_epoch(3)
        engine.close()
        reopened = Engine(data_dir=data_dir)
        try:
            assert reopened.replication_epoch == 3
            assert load_replication_state(data_dir)["epoch"] == 3
        finally:
            reopened.close()

    def test_epoch_never_lowers(self, tmp_path):
        engine = Engine(data_dir=str(tmp_path / "db"))
        try:
            engine.set_replication_epoch(5)
            engine.set_replication_epoch(2)
            assert engine.replication_epoch == 5
        finally:
            engine.close()

    def test_checkpoint_manifest_floors_epoch(self, tmp_path):
        data_dir = str(tmp_path / "db")
        engine = Engine(data_dir=data_dir)
        engine.dataset("M", MOVIE_SCHEMA, rows=PAPER_MOVIES)
        engine.set_replication_epoch(4)
        engine.checkpoint()
        engine.close()
        _, newest = list_checkpoints(os.path.join(data_dir, "checkpoints"))[-1]
        assert read_manifest(newest)["epoch"] == 4
        # Even with the state file gone, the manifest keeps the epoch floor.
        os.unlink(os.path.join(data_dir, "replication.json"))
        reopened = Engine(data_dir=data_dir)
        try:
            assert reopened.replication_epoch == 4
        finally:
            reopened.close()

    def test_fence_and_promote_writable_round_trip(self, tmp_path):
        data_dir = str(tmp_path / "db")
        engine = Engine(data_dir=data_dir)
        engine.dataset("M", MOVIE_SCHEMA, rows=PAPER_MOVIES)
        engine.fence(7, "superseded in test")
        assert engine.read_only and engine.replication_epoch == 7
        with pytest.raises(ReproError):
            engine.dataset("N", MOVIE_SCHEMA)
        engine.close()
        # Fencing survives a restart ...
        fenced = Engine(data_dir=data_dir)
        assert fenced.read_only
        # ... and promote_writable is its lifecycle-locked inverse.
        version = fenced.promote_writable(epoch=8)
        assert version == fenced.state_version
        assert fenced.read_only is None and fenced.replication_epoch == 8
        for update in movie_update_stream(1, batch_size=1, existing=PAPER_MOVIES):
            fenced.apply(update)
        fenced.close()
        healthy = Engine(data_dir=data_dir)
        try:
            assert healthy.read_only is None
            assert healthy.state_version == version + 1
        finally:
            healthy.close()

    def test_promote_rejected_mid_replay_and_when_closed(self, tmp_path):
        engine = Engine(data_dir=str(tmp_path / "db"))
        engine._durability.replaying = True
        with pytest.raises(EngineError, match="replay"):
            engine.promote_writable()
        engine._durability.replaying = False
        engine.close()
        with pytest.raises(EngineError, match="closed"):
            engine.promote_writable()


# --------------------------------------------------------------------------- #
# Standby engines: mirror + replay-path applies
# --------------------------------------------------------------------------- #
class TestStandby:
    def _drive(self, engine: Engine, updates: int = 3) -> None:
        engine.dataset("M", MOVIE_SCHEMA, rows=PAPER_MOVIES)
        engine.view("related", related_query(), strategy="nested")
        for update in movie_update_stream(
            updates, batch_size=2, existing=PAPER_MOVIES
        ):
            engine.apply(update)

    def test_shipping_into_a_standby_reaches_the_same_state(self, tmp_path):
        primary_dir = str(tmp_path / "primary")
        replica_dir = str(tmp_path / "replica")
        primary = Engine(data_dir=primary_dir, fsync="always")
        self._drive(primary)
        primary_wal = os.path.join(primary_dir, "wal")
        replica_wal = os.path.join(replica_dir, "wal")
        chunk = read_frames(primary_wal, 1, 8)
        append_mirror_frames(replica_wal, chunk.frames)
        standby = Engine(data_dir=replica_dir, standby=True)
        assert standby.standby
        problems = state_differences(engine_state(primary), engine_state(standby))
        assert problems == []
        # Incremental tail: ship the next ops through the replay path.
        for update in movie_update_stream(2, batch_size=1, seed=99):
            primary.apply(update)
        tail = read_frames(primary_wal, *chunk.next)
        append_mirror_frames(replica_wal, tail.frames)
        for _, _, raw in tail.frames:
            standby.apply_replicated(frame_payload(raw))
        assert state_differences(engine_state(primary), engine_state(standby)) == []
        primary.close()
        standby.close()

    def test_bootstrap_package_round_trip(self, tmp_path):
        primary_dir = str(tmp_path / "primary")
        replica_dir = str(tmp_path / "replica")
        primary = Engine(data_dir=primary_dir, fsync="always")
        self._drive(primary, updates=2)
        primary.checkpoint()
        # Post-checkpoint tail the bootstrap does NOT cover.
        for update in movie_update_stream(2, batch_size=1, seed=51):
            primary.apply(update)
        bootstrap = package_bootstrap(os.path.join(primary_dir, "checkpoints"))
        assert bootstrap is not None and bootstrap["files"]
        install_bootstrap(replica_dir, bootstrap)
        # The seeded mirror resumes exactly where the checkpoint stream does.
        assert wal_end_position(os.path.join(replica_dir, "wal")) == (
            bootstrap["wal_start_segment"],
            8,
        )
        standby = Engine(data_dir=replica_dir, standby=True)
        assert standby.state_version == bootstrap["state_version"]
        tail = read_frames(
            os.path.join(primary_dir, "wal"), bootstrap["wal_start_segment"], 8
        )
        append_mirror_frames(os.path.join(replica_dir, "wal"), tail.frames)
        for _, _, raw in tail.frames:
            standby.apply_replicated(frame_payload(raw))
        assert state_differences(engine_state(primary), engine_state(standby)) == []
        primary.close()
        standby.close()


# --------------------------------------------------------------------------- #
# HTTP: converge, follower reads, promote, fence
# --------------------------------------------------------------------------- #
DRAMAS_SPEC = {
    "from": "M",
    "var": "m",
    "where": ["eq", ["field", "m", "gen"], ["const", "Drama"]],
    "select": [["field", "m", "name"]],
}


def _wait(predicate, timeout: float = 15.0) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.02)
    raise AssertionError("condition not reached in time")


@pytest.fixture
def pair(tmp_path):
    primary = ReproServer(
        ServerConfig(port=0, quiet=True, data_dir=str(tmp_path / "p"), fsync="batch")
    ).start()
    replica = ReproServer(
        ServerConfig(
            port=0,
            quiet=True,
            data_dir=str(tmp_path / "r"),
            fsync="batch",
            replica_of=primary.url,
            poll_wait=0.5,
            poll_interval=0.01,
        )
    ).start()
    try:
        yield primary, replica
    finally:
        replica.close(drain=False)
        primary.close(drain=False)


def _seed(api: APIClient, rows=None) -> None:
    api.post(
        "v1/default/datasets",
        {
            "name": "M",
            "fields": ["name", "gen", "dir"],
            "rows": rows or [["Drive", "Drama", "Refn"], ["Rush", "Action", "Howard"]],
        },
    )
    api.post(
        "v1/default/views",
        {"name": "dramas", "query": DRAMAS_SPEC, "strategy": "classic"},
    )


def _wait_replica_version(replica, version: int) -> None:
    def _ready() -> bool:
        from repro.serve.sessions import TenantRecoveringError

        try:
            status = replica.sessions.get("default").replication_status()
        except TenantRecoveringError:
            return False
        lag = status.get("replication_lag") or {}
        return status["state_version"] >= version and lag.get("records") == 0

    _wait(_ready)


class TestServeReplication:
    def test_replica_converges_with_coherent_etags(self, pair):
        primary, replica = pair
        api = APIClient(primary.url, max_retries=1, sleep=lambda _: None)
        _seed(api)
        api.post(
            "v1/default/apply",
            {"updates": [{"M": {"rows": [["Jarhead", "Drama", "Mendes"]]}}]},
        )
        _wait_replica_version(replica, 3)
        primary_view = ViewsClient(api).show("dramas")
        replica_views = ViewsClient(
            APIClient(replica.url, max_retries=1, sleep=lambda _: None)
        )
        replica_view = replica_views.show("dramas")
        assert replica_view["version"] == primary_view["version"]
        assert replica_view["pairs"] == primary_view["pairs"]
        # ETag coherence: the primary's version tag 304s on the replica.
        conditional = replica_views.show("dramas", etag=primary_view["version"])
        assert conditional.get("unchanged") is True
        # /health and /replication report the follower's lag.
        health = APIClient(replica.url).get("health")
        assert health["replica_of"] == primary.url
        assert "default" in health["replication"]
        status = ReplicationClient(APIClient(replica.url)).status()
        assert status["role"] == "replica"
        assert status["replication_lag"]["records"] == 0

    def test_wal_feed_endpoint_ships_decodable_frames(self, pair):
        primary, replica = pair
        api = APIClient(primary.url, max_retries=1, sleep=lambda _: None)
        _seed(api)
        body = api.get("v1/default/wal?from_segment=1&from_offset=8")
        assert body["status"] == "ok" and body["role"] == "primary"
        frames = decode_frames(body["frames"])
        assert len(frames) == 2
        assert body["next"] == body["end"]
        assert body["lag_records"] == 0

    def test_replica_rejects_writes_503_without_retry_after(self, pair):
        primary, replica = pair
        api = APIClient(primary.url, max_retries=1, sleep=lambda _: None)
        _seed(api)
        _wait_replica_version(replica, 2)
        sleeps = []
        replica_api = APIClient(replica.url, max_retries=3, sleep=sleeps.append)
        with pytest.raises(APIError) as excinfo:
            replica_api.post(
                "v1/default/apply",
                {"updates": [{"M": {"rows": [["Nope", "Drama", "NoOne"]]}}]},
            )
        assert excinfo.value.status == 503
        assert excinfo.value.code == "not_writable"
        # No Retry-After header: the client must NOT have retried/slept.
        assert sleeps == []
        with pytest.raises(APIError) as excinfo:
            replica_api.post("v1/default/datasets", {"name": "X", "fields": ["a"]})
        assert excinfo.value.code == "not_writable"

    def test_promote_fences_old_primary(self, pair):
        primary, replica = pair
        api = APIClient(primary.url, max_retries=1, sleep=lambda _: None)
        _seed(api)
        _wait_replica_version(replica, 2)
        replica_api = APIClient(replica.url, max_retries=1, sleep=lambda _: None)
        result = ReplicationClient(replica_api).promote()
        assert result["promoted"] and result["epoch"] >= 1
        # The new primary takes writes immediately.
        replica_api.post(
            "v1/default/apply",
            {"updates": [{"M": {"rows": [["Post", "Drama", "Promotion"]]}}]},
        )
        # The fencer thread demotes the old primary.
        _wait(lambda: primary.sessions.get("default").role == "fenced")
        with pytest.raises(APIError) as excinfo:
            api.post(
                "v1/default/apply",
                {"updates": [{"M": {"rows": [["Stale", "Drama", "Primary"]]}}]},
            )
        assert excinfo.value.status == 503
        # Promotion of a fenced tenant is refused with an epoch conflict.
        with pytest.raises(APIError) as excinfo:
            ReplicationClient(api).promote()
        assert excinfo.value.status == 409
        # A stale demote cannot lower the new primary's epoch.
        with pytest.raises(APIError) as excinfo:
            ReplicationClient(replica_api).demote(result["epoch"])
        assert excinfo.value.status == 409


class TestFailoverClient:
    def test_writes_follow_promotion_and_reads_prefer_replicas(self, pair):
        primary, replica = pair
        client = FailoverClient(
            [primary.url, replica.url],
            failover_deadline=20.0,
            probe_interval=0.05,
        )
        client.create_dataset(
            "M",
            ["name", "gen", "dir"],
            rows=[["Drive", "Drama", "Refn"]],
        )
        client.create_view("dramas", DRAMAS_SPEC)
        client.insert("M", [["Jarhead", "Drama", "Mendes"]])
        _wait_replica_version(replica, 3)
        assert client.primary().base_url == primary.url
        follower = client.view("dramas")
        assert sorted(pair_[0] for pair_ in follower["pairs"]) == ["Drive", "Jarhead"]
        # Operator promotes the replica; subsequent writes fail over to it.
        client.promote(replica.url)
        _wait(lambda: primary.sessions.get("default").role == "fenced")
        payload = client.insert("M", [["After", "Drama", "Failover"]])
        assert payload["results"][-1]["version"] == 4
        assert client.primary().base_url == replica.url
        assert client.failovers >= 0  # probed rather than errored is fine
        # Strongly consistent read goes through the primary path.
        strong = client.view("dramas", stale_ok=False)
        assert sorted(pair_[0] for pair_ in strong["pairs"]) == [
            "After",
            "Drive",
            "Jarhead",
        ]

    def test_failover_exhausted_when_no_primary_exists(self, tmp_path):
        replica_only = ReproServer(
            ServerConfig(
                port=0, quiet=True, data_dir=str(tmp_path / "r2"), fsync="off"
            )
        ).start()
        try:
            session = replica_only.sessions.get("default")
            session.engine.fence(1, "fenced for the failover test")
            session.role = "fenced"
            client = FailoverClient(
                [replica_only.url],
                failover_deadline=0.4,
                probe_interval=0.05,
            )
            with pytest.raises(APIError) as excinfo:
                client.insert("M", [["x", "y", "z"]])
            assert excinfo.value.code == "failover_exhausted"
        finally:
            replica_only.close(drain=False)


class TestRetryDeadline:
    def _closed_port_url(self) -> str:
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        return f"http://127.0.0.1:{port}"

    def test_connection_retries_bounded_by_deadline(self):
        sleeps = []
        api = APIClient(
            self._closed_port_url(),
            max_retries=10_000,
            backoff_base=2.0,
            retry_deadline=3.0,
            sleep=sleeps.append,
        )
        with pytest.raises(APIError) as excinfo:
            api.get("health")
        assert excinfo.value.code == "retry_deadline"
        # The injected sleep never waits, so the budget must have come from
        # the accumulated requested delays, not wall clock.
        assert sum(sleeps) <= 3.0

    def test_deadline_none_falls_back_to_max_retries(self):
        api = APIClient(
            self._closed_port_url(),
            max_retries=2,
            retry_deadline=None,
            sleep=lambda _: None,
        )
        with pytest.raises(APIError) as excinfo:
            api.get("health")
        assert excinfo.value.code == "connection"
        assert api.retries_performed == 2
