"""Concurrent serving: many writers, many readers, one consistent engine.

The load-bearing guarantees of the serving layer, exercised with real
threads against a live server:

* **snapshot consistency** — every read observes one engine version: an
  identity view and its base dataset, fetched in a single ``/snapshot``
  response, are always equal as multisets, even mid-storm, and the versions
  a reader observes never go backwards.
* **serial equivalence** — after the writers finish and the ingest queue
  drains, the served state equals a serial replay of the same updates on a
  local engine, for views maintained under **all four strategies** (naive,
  classic, recursive, nested) plus the paper's nested ``related`` query.
* **admission control** — writers storming a bounded queue see 429s, yet
  every synchronous ack corresponds to an applied update (counted in
  ``/stats``), and rejected updates are really not applied.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.bag import Bag
from repro.client.api import APIClient, APIError
from repro.engine import Engine
from repro.serve import ReproServer, ServerConfig
from repro.serve.protocol import decode_value, record_from_spec, query_from_spec

WRITERS = 4
READERS = 4
UPDATES_PER_WRITER = 10

GENRES = ("Drama", "Action", "Comedy")

DRAMAS_SPEC = {
    "from": "M",
    "var": "m",
    "where": ["eq", ["field", "m", "gen"], ["const", "Drama"]],
    "select": [["field", "m", "name"]],
}

CATALOG_SPEC = {"from": "M", "var": "m", "select": [["row", "m"]]}

RELATED_SPEC = {
    "from": "M",
    "var": "m",
    "select": [
        ["field", "m", "name"],
        [
            "nest",
            {
                "from": "M",
                "var": "m2",
                "where": [
                    "and",
                    ["ne", ["field", "m", "name"], ["field", "m2", "name"]],
                    ["eq", ["field", "m", "gen"], ["field", "m2", "gen"]],
                ],
                "select": [["field", "m2", "name"]],
            },
        ],
    ],
}

STRATEGY_VIEWS = {
    "dramas_naive": ("naive", DRAMAS_SPEC),
    "dramas_classic": ("classic", DRAMAS_SPEC),
    "dramas_recursive": ("recursive", DRAMAS_SPEC),
    "dramas_nested": ("nested", DRAMAS_SPEC),
    "catalog": ("auto", CATALOG_SPEC),
    "related": ("nested", RELATED_SPEC),
}

INITIAL_ROWS = [["Drive", "Drama", "Refn"], ["Skyfall", "Action", "Mendes"]]


def _writer_rows(writer: int):
    return [
        [f"W{writer}U{update:02d}", GENRES[(writer + update) % len(GENRES)], f"D{update % 3}"]
        for update in range(UPDATES_PER_WRITER)
    ]


def _decode_pairs(payload) -> Bag:
    return Bag.from_pairs(
        [(decode_value(element), mult) for element, mult in payload["pairs"]]
    )


def _seed(api: APIClient, tenant: str = "t") -> None:
    api.post(
        f"v1/{tenant}/datasets",
        {"name": "M", "fields": ["name", "gen", "dir"], "rows": INITIAL_ROWS},
    )
    for view_name, (strategy, spec) in STRATEGY_VIEWS.items():
        api.post(
            f"v1/{tenant}/views",
            {"name": view_name, "query": spec, "strategy": strategy},
        )


def _serial_replay() -> dict:
    """The same workload applied serially on a local engine."""
    engine = Engine()
    engine.dataset(
        "M",
        record_from_spec("M", ["name", "gen", "dir"]),
        [tuple(row) for row in INITIAL_ROWS],
    )
    datasets = {"M": engine.dataset_handle("M")}
    handles = {
        view_name: engine.view(
            view_name, query_from_spec(spec, datasets), strategy=strategy
        )
        for view_name, (strategy, spec) in STRATEGY_VIEWS.items()
    }
    for writer in range(WRITERS):
        for row in _writer_rows(writer):
            engine.insert("M", [tuple(row)])
    results = {name: handle.result() for name, handle in handles.items()}
    results["M"] = engine.relation("M")
    engine.close()
    return results


def test_concurrent_writers_and_readers_match_serial_replay():
    with ReproServer(ServerConfig(port=0, coalesce=8)) as server:
        _seed(APIClient(server.url, max_retries=2))

        errors = []
        stop_readers = threading.Event()
        inconsistencies = []
        versions_seen = [[] for _ in range(READERS)]

        def write(writer: int) -> None:
            api = APIClient(server.url, max_retries=8)
            try:
                for row in _writer_rows(writer):
                    api.post("v1/t/apply", {"updates": [{"M": {"rows": [row]}}]})
            except Exception as error:  # noqa: BLE001 - surfaced below
                errors.append(error)

        def read(reader: int) -> None:
            api = APIClient(server.url, max_retries=8)
            try:
                while not stop_readers.is_set():
                    snapshot = api.get("v1/t/snapshot")
                    versions_seen[reader].append(snapshot["version"])
                    catalog = _decode_pairs(snapshot["views"]["catalog"])
                    dataset = _decode_pairs(snapshot["datasets"]["M"])
                    if catalog != dataset:
                        inconsistencies.append(
                            (snapshot["version"], catalog, dataset)
                        )
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        writers = [
            threading.Thread(target=write, args=(writer,)) for writer in range(WRITERS)
        ]
        readers = [
            threading.Thread(target=read, args=(reader,)) for reader in range(READERS)
        ]
        for thread in readers + writers:
            thread.start()
        for thread in writers:
            thread.join(60.0)
        stop_readers.set()
        for thread in readers:
            thread.join(10.0)

        assert not errors, errors
        assert not inconsistencies, inconsistencies[:1]
        for observed in versions_seen:
            assert observed, "every reader made progress"
            assert observed == sorted(observed), "versions never went backwards"

        # Post-drain: the served state equals the serial replay, for every
        # strategy.  All writer rows are distinct inserts, so any
        # interleaving is serially equivalent.
        api = APIClient(server.url, max_retries=2)
        expected = _serial_replay()
        # The last sync ack can race the worker's snapshot publication by a
        # hair; poll until the published snapshot caught up.
        deadline = time.monotonic() + 10.0
        while True:
            final = api.get("v1/t/snapshot")
            if _decode_pairs(final["datasets"]["M"]) == expected["M"]:
                break
            assert time.monotonic() < deadline, "snapshot never caught up"
            time.sleep(0.01)
        for view_name in STRATEGY_VIEWS:
            assert _decode_pairs(final["views"][view_name]) == expected[view_name], (
                f"view {view_name!r} diverged from the serial replay"
            )

        stats = api.get("stats")["tenants"]["t"]
        assert stats["ingest"]["applied_updates"] == WRITERS * UPDATES_PER_WRITER
        assert stats["ingest"]["errors"] == 0
        assert stats["queue_depth"] == 0

        # The storm actually coalesced somewhere, or at least every sync
        # writer got an individual ack; both are fine — what matters is
        # accounting adds up: every accepted apply was applied.
        assert (
            stats["ingest"]["accepted"]
            == WRITERS * UPDATES_PER_WRITER + 1 + len(STRATEGY_VIEWS)
        )


def test_storm_against_bounded_queue_rejects_but_never_corrupts():
    config = ServerConfig(port=0, queue_depth=4, coalesce=4)
    with ReproServer(config) as server:
        seed_api = APIClient(server.url, max_retries=2)
        seed_api.post(
            "v1/t/datasets", {"name": "M", "fields": ["name", "gen", "dir"]}
        )

        accepted_rows = []
        rejected = []
        lock = threading.Lock()

        def storm(writer: int) -> None:
            # max_retries=0: rejections surface instead of being absorbed.
            api = APIClient(server.url, max_retries=0)
            for update in range(UPDATES_PER_WRITER):
                row = [f"S{writer}x{update:02d}", "Drama", "D"]
                try:
                    api.post(
                        "v1/t/apply",
                        {"updates": [{"M": {"rows": [row]}}], "mode": "async"},
                    )
                    with lock:
                        accepted_rows.append(tuple(row))
                except APIError as error:
                    assert error.status == 429
                    assert error.code == "backpressure"
                    with lock:
                        rejected.append(error)

        threads = [
            threading.Thread(target=storm, args=(writer,)) for writer in range(WRITERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)

        # Drain: close applies everything accepted before answering.
        session = server.sessions.get("t")
        engine = session.engine
        server.close(drain=True)

        final = engine.snapshot().datasets["M"]
        assert final == Bag(accepted_rows)
        stats = session.stats()["ingest"]
        assert stats["applied_updates"] == len(accepted_rows)
        assert stats["rejected_backpressure"] == len(rejected)
        if rejected:
            assert all(error.status == 429 for error in rejected)


@pytest.mark.parametrize("strategy", ["naive", "classic", "recursive", "nested"])
def test_single_strategy_storm_matches_serial_replay(strategy):
    """Each strategy independently survives a concurrent write storm."""
    with ReproServer(ServerConfig(port=0, coalesce=16)) as server:
        api = APIClient(server.url, max_retries=4)
        api.post(
            "v1/t/datasets",
            {"name": "M", "fields": ["name", "gen", "dir"], "rows": INITIAL_ROWS},
        )
        api.post(
            "v1/t/views",
            {"name": "dramas", "query": DRAMAS_SPEC, "strategy": strategy},
        )

        errors = []

        def write(writer: int) -> None:
            client = APIClient(server.url, max_retries=8)
            try:
                for row in _writer_rows(writer):
                    client.post("v1/t/apply", {"updates": [{"M": {"rows": [row]}}]})
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [
            threading.Thread(target=write, args=(writer,)) for writer in range(WRITERS)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        assert not errors, errors

        engine = Engine()
        engine.dataset(
            "M",
            record_from_spec("M", ["name", "gen", "dir"]),
            [tuple(row) for row in INITIAL_ROWS],
        )
        handle = engine.view(
            "dramas",
            query_from_spec(DRAMAS_SPEC, {"M": engine.dataset_handle("M")}),
            strategy=strategy,
        )
        for writer in range(WRITERS):
            for row in _writer_rows(writer):
                engine.insert("M", [tuple(row)])

        deadline = time.monotonic() + 10.0
        while True:
            shown = api.get("v1/t/views/dramas")
            if _decode_pairs(shown) == handle.result():
                break
            assert time.monotonic() < deadline, (
                f"{strategy} view never converged to the serial replay"
            )
            time.sleep(0.01)
        engine.close()
