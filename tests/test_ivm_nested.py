"""Tests for nested IVM through shredding (the engine behind Section 2.2/5)."""

import pytest

from repro.bag import Bag
from repro.ivm import Database, NaiveView, NestedIVMView, Update, deletions, insertions
from repro.labels import Label
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.evaluator import evaluate_bag
from repro.nrc.types import BASE, bag_of, tuple_of
from repro.shredding.shred_database import input_dict_name
from repro.workloads import (
    MOVIE_SCHEMA,
    PAPER_UPDATE,
    feed_query,
    generate_movies,
    generate_posts,
    generate_users,
    movie_update_stream,
    post_update_stream,
    related_query,
    POST_SCHEMA,
    USER_SCHEMA,
)

NESTED_SCHEMA = bag_of(bag_of(BASE))


class TestRelatedMaintenance:
    """The motivating example, maintained in shredded form."""

    def test_initial_materialization_matches_direct_evaluation(self, movie_db, related):
        view = NestedIVMView(related, movie_db)
        assert view.result() == evaluate_bag(related, movie_db.environment())

    def test_paper_update_produces_the_paper_result(self, movie_db, related):
        view = NestedIVMView(related, movie_db)
        movie_db.apply_update(Update(relations={"M": PAPER_UPDATE}))
        result = view.result()
        rows = {name: inner for name, inner in result.elements()}
        assert rows["Drive"] == Bag(["Jarhead"])
        assert rows["Skyfall"] == Bag(["Rush", "Jarhead"])
        assert rows["Jarhead"] == Bag(["Drive", "Skyfall"])
        assert rows["Rush"] == Bag(["Skyfall"])

    def test_matches_naive_over_mixed_stream(self, related):
        database = Database()
        database.register("M", MOVIE_SCHEMA, generate_movies(30))
        naive = NaiveView(related, database)
        nested = NestedIVMView(related, database)
        stream = movie_update_stream(
            5, 3, existing=database.relation("M"), deletion_ratio=0.4, seed=5
        )
        for update in stream:
            database.apply_update(update)
            assert nested.result() == naive.result()

    def test_flat_view_and_dictionary_shapes(self, movie_db, related):
        view = NestedIVMView(related, movie_db)
        assert view.flat_result().cardinality() == 3
        assert view.dictionary_paths() == ((1,),)
        dictionary = view.dictionary((1,))
        assert len(dictionary.support()) == 3

    def test_unknown_dictionary_path_rejected(self, movie_db, related):
        view = NestedIVMView(related, movie_db)
        with pytest.raises(KeyError):
            view.dictionary((9,))

    def test_does_less_work_than_naive_on_larger_instances(self, related):
        database = Database()
        database.register("M", MOVIE_SCHEMA, generate_movies(200))
        naive = NaiveView(related, database)
        nested = NestedIVMView(related, database)
        for update in movie_update_stream(2, 2):
            database.apply_update(update)
        assert (
            nested.stats.mean_update_operations
            < naive.stats.mean_update_operations / 3
        )

    def test_vacuum_drops_stale_labels(self, movie_db, related):
        view = NestedIVMView(movie_db and related, movie_db)
        movie_db.apply_update(deletions("M", [("Drive", "Drama", "Refn")]))
        assert view.result() == evaluate_bag(related, movie_db.environment())
        removed = view.vacuum()
        assert removed >= 1
        assert view.result() == evaluate_bag(related, movie_db.environment())


class TestOtherQueries:
    def test_identity_over_nested_input(self):
        database = Database()
        database.register("R", NESTED_SCHEMA, Bag([Bag(["a", "b"]), Bag(["c"])]))
        query = build.for_in("x", ast.Relation("R", NESTED_SCHEMA), ast.SngVar("x"))
        view = NestedIVMView(query, database)
        database.apply_update(Update(relations={"R": Bag([Bag(["d", "e"])])}))
        assert view.result() == database.relation("R")

    def test_social_feed_maintenance(self):
        users = generate_users(15, num_cities=3)
        posts = generate_posts(users, posts_per_user=2)
        database = Database()
        database.register("Users", USER_SCHEMA, users)
        database.register("Posts", POST_SCHEMA, posts)
        query = feed_query()
        naive = NaiveView(query, database)
        nested = NestedIVMView(query, database)
        for update in post_update_stream(users, 3, 2):
            database.apply_update(update)
        assert nested.result() == naive.result()

    def test_flat_query_through_the_nested_engine(self, movie_db):
        query = build.filter_query(
            ast.Relation("M", MOVIE_SCHEMA),
            preds.eq(preds.var_path("x", 1), preds.const("Drama")),
            "x",
        )
        view = NestedIVMView(query, movie_db)
        movie_db.apply_update(insertions("M", [("Melancholia", "Drama", "vonTrier")]))
        assert view.result() == evaluate_bag(query, movie_db.environment())

    def test_updates_to_one_of_two_relations(self):
        database = Database()
        database.register("Users", USER_SCHEMA, generate_users(8, num_cities=2))
        database.register("Posts", POST_SCHEMA, generate_posts(generate_users(8, num_cities=2)))
        query = feed_query()
        naive = NaiveView(query, database)
        nested = NestedIVMView(query, database)
        database.apply_update(insertions("Users", [("newuser", "City0")]))
        assert nested.result() == naive.result()


class TestDeepUpdates:
    def test_deep_update_to_input_inner_bag(self):
        database = Database()
        database.register("R", NESTED_SCHEMA, Bag([Bag(["a", "b"]), Bag(["c"])]))
        query = build.for_in("x", ast.Relation("R", NESTED_SCHEMA), ast.SngVar("x"))
        view = NestedIVMView(query, database)

        dict_name = input_dict_name("R", ())
        label = sorted(
            database.shredded_environment().dictionaries[dict_name].support(),
            key=lambda l: l.render(),
        )[0]
        database.apply_update(Update(deep={dict_name: {label: Bag(["z"])}}))
        assert view.result() == database.relation("R")

    def test_deep_deletion_from_inner_bag(self):
        database = Database()
        database.register("R", NESTED_SCHEMA, Bag([Bag(["a", "b"])]))
        query = build.for_in("x", ast.Relation("R", NESTED_SCHEMA), ast.SngVar("x"))
        view = NestedIVMView(query, database)
        dict_name = input_dict_name("R", ())
        label = next(iter(database.shredded_environment().dictionaries[dict_name].support()))
        database.apply_update(
            Update(deep={dict_name: {label: Bag.from_pairs([("a", -1)])}})
        )
        assert view.result() == Bag([Bag(["b"])])

    def test_deep_update_work_is_independent_of_database_size(self):
        sizes = (40, 160)
        ops = []
        for size in sizes:
            database = Database()
            database.register(
                "R", NESTED_SCHEMA, Bag([Bag([f"x{i}"]) for i in range(size)])
            )
            query = build.for_in("x", ast.Relation("R", NESTED_SCHEMA), ast.SngVar("x"))
            view = NestedIVMView(query, database)
            dict_name = input_dict_name("R", ())
            label = next(iter(database.shredded_environment().dictionaries[dict_name].support()))
            database.apply_update(Update(deep={dict_name: {label: Bag(["extra"])}}))
            ops.append(view.stats.mean_update_operations)
        assert ops[0] == ops[1]

    def test_mixed_shallow_and_deep_update(self):
        database = Database()
        database.register("R", NESTED_SCHEMA, Bag([Bag(["a"]), Bag(["b"])]))
        query = build.for_in("x", ast.Relation("R", NESTED_SCHEMA), ast.SngVar("x"))
        view = NestedIVMView(query, database)
        dict_name = input_dict_name("R", ())
        label = sorted(
            database.shredded_environment().dictionaries[dict_name].support(),
            key=lambda l: l.render(),
        )[0]
        database.apply_update(
            Update(relations={"R": Bag([Bag(["c"])])}, deep={dict_name: {label: Bag(["z"])}})
        )
        assert view.result() == database.relation("R")
