"""Cross-module property tests: shredded maintenance equals recomputation.

These are the strongest invariants of the reproduction: for random instances
and random update streams, the shredded/nested IVM engine must agree with
direct re-evaluation of the original NRC+ query (Theorem 8 composed with
Proposition 4.1 and Theorem 5).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bag import Bag
from repro.ivm import Database, NestedIVMView, Update
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.shredding import build_shredded_environment, shred_query
from repro.workloads import MOVIE_SCHEMA, related_query

GENRES = ("Drama", "Action", "Comedy")
DIRECTORS = ("Refn", "Mendes", "Howard")

movie_rows = st.tuples(
    st.text(alphabet="ABCDEF", min_size=1, max_size=3),
    st.sampled_from(GENRES),
    st.sampled_from(DIRECTORS),
)
movie_bags = st.dictionaries(movie_rows, st.integers(1, 2), max_size=6).map(Bag.from_mapping)
update_bags = st.dictionaries(movie_rows, st.integers(-1, 2), max_size=3).map(Bag.from_mapping)


@settings(max_examples=25, deadline=None)
@given(movie_bags)
def test_shredded_evaluation_equals_direct_evaluation(instance):
    """Theorem 8 on random instances of the related query."""
    query = related_query()
    direct = evaluate_bag(query, Environment(relations={"M": instance}))
    shredded = shred_query(query)
    env = build_shredded_environment({"M": instance}, {"M": MOVIE_SCHEMA})
    assert shredded.evaluate_nested(env) == direct


@settings(max_examples=20, deadline=None)
@given(movie_bags, st.lists(update_bags, min_size=1, max_size=3))
def test_nested_ivm_equals_recomputation_over_update_streams(instance, updates):
    """Maintenance through shredding tracks recomputation over whole streams."""
    query = related_query()
    database = Database()
    database.register("M", MOVIE_SCHEMA, instance)
    view = NestedIVMView(query, database)
    for update in updates:
        # Avoid driving multiplicities of existing tuples negative: deletions
        # are only meaningful for tuples that are present.
        safe = Bag.from_pairs(
            (row, mult)
            for row, mult in update.items()
            if mult > 0 or database.relation("M").multiplicity(row) >= -mult
        )
        database.apply_update(Update(relations={"M": safe}))
        expected = evaluate_bag(query, database.environment())
        assert view.result() == expected
