"""The `repro.engine` facade: datasets, views, updates, handles, reprs."""

from __future__ import annotations

import pytest

from repro.bag import Bag
from repro.engine import Engine
from repro.errors import EngineError, NotInFragmentError
from repro.ivm.updates import Update, UpdateStream, insertions
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.surface import Dataset
from repro.workloads import (
    MOVIE_RECORD,
    MOVIE_SCHEMA,
    PAPER_MOVIES,
    generate_movies,
    movie_update_stream,
    related_query,
)

STRATEGIES = ("naive", "classic", "recursive", "nested", "auto")


def drama_filter():
    movies = ast.Relation("M", MOVIE_SCHEMA)
    return build.filter_query(
        movies, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x"
    )


# --------------------------------------------------------------------------- #
# Dataset registration
# --------------------------------------------------------------------------- #
def test_dataset_with_record_returns_surface_dataset():
    engine = Engine()
    movies = engine.dataset("M", MOVIE_RECORD, rows=PAPER_MOVIES)
    assert isinstance(movies, Dataset)
    assert engine.relation("M") == PAPER_MOVIES
    x = movies.row("x")
    query = movies.iterate(x).where(x.field("gen") == "Drama").select(x.field("name"))
    view = engine.view("dramas", query)
    assert view.result() == Bag(["Drive"])


def test_dataset_with_bag_type_returns_relation_node():
    engine = Engine()
    relation = engine.dataset("M", MOVIE_SCHEMA, rows=list(PAPER_MOVIES.elements()))
    assert isinstance(relation, ast.Relation)
    assert relation.name == "M"
    assert engine.relation("M") == PAPER_MOVIES


def test_dataset_rejects_non_schema():
    engine = Engine()
    with pytest.raises(TypeError):
        engine.dataset("M", "not a schema")


def test_duplicate_dataset_rejected():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA)
    with pytest.raises(EngineError):
        engine.dataset("M", MOVIE_SCHEMA)


def test_dataset_handle_roundtrip():
    engine = Engine()
    handle = engine.dataset("M", MOVIE_RECORD, rows=PAPER_MOVIES)
    assert engine.dataset_handle("M") is handle
    with pytest.raises(EngineError):
        engine.dataset_handle("missing")


# --------------------------------------------------------------------------- #
# Views
# --------------------------------------------------------------------------- #
def test_duplicate_view_name_rejected():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    engine.view("dramas", drama_filter())
    with pytest.raises(EngineError):
        engine.view("dramas", drama_filter())


def test_unknown_strategy_rejected():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    with pytest.raises(EngineError):
        engine.view("dramas", drama_filter(), strategy="quantum")


def test_explicit_strategy_outside_fragment_rejected():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    with pytest.raises(NotInFragmentError):
        engine.view("related", related_query(), strategy="classic")


def test_view_lookup_and_membership():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    handle = engine.view("dramas", drama_filter())
    assert engine["dramas"] is handle
    assert "dramas" in engine
    assert "other" not in engine
    assert engine.views() == (handle,)
    with pytest.raises(EngineError):
        engine["other"]


def test_query_type_validation():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    with pytest.raises(TypeError):
        engine.view("bad", "select * from M")


def test_view_rejects_zero_expected_update_size():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    with pytest.raises(EngineError):
        engine.view("dramas", drama_filter(), expected_update_size=0)


def test_explicit_targets_restrict_auto_to_honoring_backends():
    # Backends that derive their own update sources (naive, nested) would
    # refresh on relations the caller pinned out, so an explicit targets
    # list limits planning to classic/recursive and rejects the others.
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    view = engine.view("dramas", drama_filter(), targets=["M"])
    assert view.strategy in ("classic", "recursive")
    naive_estimate = view.plan.estimate_for("naive")
    assert not naive_estimate.eligible
    assert "targets" in naive_estimate.reason
    with pytest.raises(EngineError):
        engine.view("dramas2", drama_filter(), strategy="nested", targets=["M"])


# --------------------------------------------------------------------------- #
# Updates
# --------------------------------------------------------------------------- #
def test_apply_accepts_mapping_and_update_objects():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    view = engine.view("dramas", drama_filter())
    engine.apply({"M": [("Jarhead", "Drama", "Mendes")]})
    engine.apply(insertions("M", [("Heat", "Crime", "Mann")]))
    assert view.result() == Bag(
        [("Drive", "Drama", "Refn"), ("Jarhead", "Drama", "Mendes")]
    )
    with pytest.raises(TypeError):
        engine.apply(42)


def test_insert_delete_convenience():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    view = engine.view("dramas", drama_filter())
    engine.insert("M", [("Jarhead", "Drama", "Mendes")])
    engine.delete("M", [("Drive", "Drama", "Refn")])
    assert view.result() == Bag([("Jarhead", "Drama", "Mendes")])


def test_apply_stream_counts_updates():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, generate_movies(20))
    engine.view("dramas", drama_filter())
    stream = movie_update_stream(3, 2, seed=5)
    assert engine.apply_stream(stream) == 3


# --------------------------------------------------------------------------- #
# All strategies agree (satellite: parametrized consistency test)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategies_agree_under_mixed_stream(strategy):
    base = generate_movies(30)
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, base)
    view = engine.view("dramas", drama_filter(), strategy=strategy)

    stream = movie_update_stream(4, 3, existing=base, deletion_ratio=0.4, seed=11)
    engine.apply_stream(stream)

    expected = evaluate_bag(
        drama_filter(), Environment(relations={"M": engine.relation("M")})
    )
    assert view.result() == expected
    assert view.stats.updates_applied == 4


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_strategies_agree_on_nested_view(strategy):
    # The nested `related` view is outside IncNRC+, so classic/recursive
    # must refuse it; every other strategy maintains the same result.
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    if strategy in ("classic", "recursive"):
        with pytest.raises(NotInFragmentError):
            engine.view("related", related_query(), strategy=strategy)
        return
    view = engine.view("related", related_query(), strategy=strategy)
    engine.insert("M", [("Jarhead", "Drama", "Mendes")])
    expected = evaluate_bag(
        related_query(), Environment(relations={"M": engine.relation("M")})
    )
    assert view.result() == expected


# --------------------------------------------------------------------------- #
# Reprs (satellite)
# --------------------------------------------------------------------------- #
def test_update_stream_repr():
    assert repr(UpdateStream()) == "UpdateStream(empty)"
    stream = movie_update_stream(2, 3, seed=1)
    assert repr(stream) == "UpdateStream(2 updates, 6 changed tuples)"


def test_update_repr():
    update = insertions("M", [("Jarhead", "Drama", "Mendes")])
    assert repr(update) == "Update(M:1)"


def test_maintenance_stats_repr():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    view = engine.view("dramas", drama_filter())
    engine.insert("M", [("Heat", "Crime", "Mann")])
    text = repr(view.stats)
    assert text.startswith("MaintenanceStats(")
    assert "updates=1" in text
    assert "ops/update" in text


def test_engine_and_handle_reprs():
    engine = Engine()
    engine.dataset("M", MOVIE_SCHEMA, PAPER_MOVIES)
    handle = engine.view("dramas", drama_filter(), strategy="classic")
    assert "dramas" in repr(handle) and "classic" in repr(handle)
    assert "M" in repr(engine) and "dramas:classic" in repr(engine)
