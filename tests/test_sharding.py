"""Sharded relation stores, parallel view refresh, and their escape hatches.

The core property is differential: maintenance over **sharded stores** (any
shard count, with or without concurrent view refresh) must produce
bit-identical view contents to the **serial single-shard** escape hatch
(``REPRO_SHARDS=1`` + ``REPRO_PARALLEL_VIEWS=0`` — the pre-sharding
behavior) and to the strict **interpreter**, across every strategy,
including negative multiplicities and NaN/unhashable join keys.  Sharding
specifics are covered directly: primary-key routing co-locates equal keys
(single-shard probes), poisoning is confined to the owning shard, vacuum
re-validates per shard, and the nested strategy's active-label index stays
consistent with a full scan.
"""

import math
import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bag.bag import Bag, EMPTY_BAG
from repro.engine import Engine
from repro.engine.scheduler import (
    ViewRefreshScheduler,
    forced_parallel_views,
    resolve_view_workers,
)
from repro.ivm import Update
from repro.ivm.database import Database, RefreshContext
from repro.nrc import ast
from repro.nrc import builders as build
from repro.nrc.compile import compilation_enabled, forced_interpretation
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.types import BASE, bag_of
from repro.storage import (
    HashIndex,
    RelationStore,
    ShardIndexFamily,
    ShardedBag,
    StorageManager,
    forced_shards,
    resolve_shard_count,
)
from repro.workloads import (
    MOVIE_SCHEMA,
    generate_movies,
    genre_selfjoin_query,
    movie_update_stream,
    movies_engine,
)

STRATEGIES = ("naive", "classic", "recursive", "nested")


# --------------------------------------------------------------------------- #
# ShardedBag: Bag semantics over per-shard snapshots
# --------------------------------------------------------------------------- #
class TestShardedBag:
    def _pair(self):
        store = RelationStore("R", Bag([("a", 1), ("b", 2), ("c", 1), ("d", 3)]), shards=4)
        plain = Bag([("a", 1), ("b", 2), ("c", 1), ("d", 3)])
        return store.bag, plain

    def test_point_queries_and_sizes(self):
        sharded, plain = self._pair()
        assert isinstance(sharded, ShardedBag)
        assert sharded.multiplicity(("a", 1)) == 1
        assert ("b", 2) in sharded and ("z", 9) not in sharded
        assert len(sharded) == len(plain)
        assert sharded.distinct_size() == plain.distinct_size()
        assert sharded.cardinality() == plain.cardinality()
        assert not sharded.is_empty()
        assert sorted(sharded.elements()) == sorted(plain.elements())
        assert sorted(sharded.items()) == sorted(plain.items())

    def test_equality_and_hash_match_plain_bags(self):
        sharded, plain = self._pair()
        assert sharded == plain and plain == sharded
        assert hash(sharded) == hash(plain)

    def test_structural_operations_inherited(self):
        sharded, plain = self._pair()
        delta = Bag.from_pairs([(("a", 1), -1), (("e", 5), 2)])
        assert sharded.union(delta) == plain.union(delta)
        assert sharded.difference(delta) == plain.difference(delta)
        assert sharded.negate() == plain.negate()
        assert sharded.as_dict() == plain.as_dict()

    def test_negative_multiplicities(self):
        store = RelationStore("R", EMPTY_BAG, shards=3)
        store.apply_delta(Bag.from_pairs([(("a", 1), -2), (("b", 2), 1)]))
        assert store.bag.multiplicity(("a", 1)) == -2
        assert store.bag.has_negative()
        assert store.bag.cardinality() == 3


# --------------------------------------------------------------------------- #
# Store behavior: routing, per-shard COW, escape hatch
# --------------------------------------------------------------------------- #
class TestShardedStore:
    def test_single_shard_hatch_reproduces_plain_store(self):
        with forced_shards(1):
            store = RelationStore("R", Bag([("a", 1)]))
        assert store.shards == 1
        assert type(store.bag) is Bag
        assert isinstance(store.ensure_index(((1,),)), HashIndex)

    def test_default_is_sharded_and_env_overrides(self):
        assert RelationStore("R").shards == resolve_shard_count(None)
        with forced_shards(5):
            assert RelationStore("R").shards == 5
        assert RelationStore("R", shards=2).shards == 2

    def test_first_index_sets_routing_and_coloctes_equal_keys(self):
        rows = Bag([("m%d" % i, "g%d" % (i % 3), "d") for i in range(30)])
        store = RelationStore("R", rows, shards=4)
        assert store.routing_paths is None
        family = store.ensure_index(((1,),))
        assert store.routing_paths == ((1,),)
        assert isinstance(family, ShardIndexFamily) and family.routed
        # Equal primary keys live in exactly one shard: the probe consults
        # only the owning shard, and no other shard's slice knows the key.
        for genre in ("g0", "g1", "g2"):
            key = (genre,)
            owning = [index for index in family.shard_indexes if index.bucket_of(key)]
            assert len(owning) == 1
            assert dict(family.get(key)) == dict(owning[0].bucket_of(key))

    def test_secondary_index_merges_disjoint_shard_buckets(self):
        rows = Bag([("m%d" % i, "g%d" % (i % 3), "d%d" % (i % 2)) for i in range(20)])
        store = RelationStore("R", rows, shards=4)
        store.ensure_index(((1,),))  # primary: genre
        secondary = store.ensure_index(((2,),))  # secondary: director
        assert not secondary.routed
        unsharded = HashIndex(((2,),), rows)
        for director in ("d0", "d1"):
            assert dict(secondary.get((director,))) == dict(unsharded.get((director,)))

    def test_apply_delta_and_replace_keep_index_views_fresh(self):
        store = RelationStore("R", Bag([("a", 1)]), shards=4)
        family = store.ensure_index(((1,),))
        store.apply_delta(Bag([("b", 1)]))
        assert family.version == store.version
        assert family.deltas_applied == 1
        assert dict(family.get((1,))) == {("a", 1): 1, ("b", 1): 1}
        rebuilds = family.rebuilds
        store.replace(Bag([("z", 9)]))
        assert family.rebuilds == rebuilds + 1
        assert family.version == store.version
        assert dict(family.get((9,))) == {("z", 9): 1}

    def test_retained_snapshot_copies_only_touched_shards(self):
        rows = Bag([(("k%d" % i), i) for i in range(64)])
        store = RelationStore("R", rows, shards=8)
        snapshot = store.bag  # a reader retains the composite
        shard_dicts = [bag._data for bag in snapshot.shard_bags]
        store.apply_delta(Bag([("fresh", 999)]))
        after = store.bag
        preserved = sum(
            1
            for old, new in zip(shard_dicts, (bag._data for bag in after.shard_bags))
            if old is new
        )
        # Exactly one shard was touched; the other seven still share their
        # dicts with the retained snapshot (no O(n) copy happened).
        assert preserved == 7
        assert snapshot.multiplicity(("fresh", 999)) == 0  # reader's view is immutable
        assert after.multiplicity(("fresh", 999)) == 1

    def test_unhashable_routing_falls_back_to_element_hash(self):
        store = RelationStore("R", EMPTY_BAG, shards=4)
        family = store.ensure_index(((1,),))
        # Elements whose key projection fails route by whole-element hash
        # and poison their shard; probes then decline store-wide.
        store.apply_delta(Bag([("short",), ("ok", 1)]))
        assert family.poisoned
        assert store.bag.multiplicity(("short",)) == 1

    def test_provider_serves_family_and_declines_stale(self):
        manager = StorageManager(shards=4)
        manager.ensure("R", Bag([("a", 1)]))
        family = manager.ensure_index("R", ((1,),))
        provider = manager.provider()
        assert provider.probe("R", ((1,),), manager.bag("R")) is family
        stale = manager.bag("R")
        manager.apply_delta("R", Bag([("b", 2)]))
        assert provider.probe("R", ((1,),), stale) is None
        assert provider.probe("R", ((1,),), manager.bag("R")) is family


# --------------------------------------------------------------------------- #
# Poisoning is per shard; vacuum re-validates per shard
# --------------------------------------------------------------------------- #
class TestPerShardPoisoning:
    def test_nan_poisons_only_owning_shard(self):
        nan = float("nan")
        store = RelationStore("R", Bag([("a", 1.0), ("b", 2.0), ("c", 3.0)]), shards=4)
        family = store.ensure_index(((1,),))
        store.apply_delta(Bag([("n", nan)]))
        description = family.describe()
        assert description["poisoned"]
        assert len(description["poisoned_shards"]) == 1
        healthy = [
            entry for entry in description["per_shard"] if not entry["poisoned"]
        ]
        assert len(healthy) == 3

    def test_vacuum_rebuilds_only_poisoned_shards(self):
        nan = float("nan")
        store = RelationStore("R", Bag([("a", 1.0), ("b", 2.0)]), shards=4)
        family = store.ensure_index(((1,),))
        store.apply_delta(Bag([("n", nan)]))
        before = [entry["rebuilds"] for entry in family.describe()["per_shard"]]
        # Bad key still present: vacuum re-poisons the owning shard.
        assert store.vacuum() == 0
        assert family.poisoned
        store.apply_delta(Bag.from_pairs([(("n", nan), -1)]))
        assert store.vacuum() == 1
        assert not family.poisoned
        after = [entry["rebuilds"] for entry in family.describe()["per_shard"]]
        extra_rebuilds = [now - then for then, now in zip(before, after)]
        # Only the formerly poisoned shard was rebuilt (twice: the failed
        # vacuum attempt and the successful one); healthy shards kept their
        # incrementally-maintained slices untouched.
        assert sorted(extra_rebuilds) == [0, 0, 0, 2]

    def test_engine_vacuum_heals_and_matches_interpreter(self):
        nan = float("nan")

        def run(interpreted):
            with forced_interpretation(interpreted), forced_shards(4):
                engine = movies_engine(generate_movies(12, seed=3))
                view = engine.view("v", genre_selfjoin_query(), strategy="classic")
                engine.apply({"M": [("bad", nan, "d")]})
                engine.apply({"M": {("bad", nan, "d"): -1}})
                engine.vacuum()
                engine.apply({"M": [("fine", "Drama", "d")]})
                return engine, view

        engine, view = run(False)
        _, interpreted_view = run(True)
        assert view.result() == interpreted_view.result()
        report = view.indexes()
        assert all(not entry["poisoned"] for entry in report if entry["registered"])


# --------------------------------------------------------------------------- #
# Differential property: sharded ≡ single-shard ≡ interpreter, all strategies
# --------------------------------------------------------------------------- #
def _maintain(strategy, shards, workers, base, updates, interpreted=False):
    with forced_shards(shards), forced_parallel_views(workers), forced_interpretation(
        interpreted
    ):
        engine = movies_engine(Bag(base))
        view = engine.view("v", genre_selfjoin_query(), strategy=strategy)
        for update in updates:
            engine.apply(update)
        return view.result()


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_streams_three_configs_agree(strategy):
    base = generate_movies(40, seed=5)
    updates = list(movie_update_stream(4, 3, existing=base, deletion_ratio=0.4, seed=9))
    sharded = _maintain(strategy, 4, 2, base, updates)
    serial = _maintain(strategy, 1, 0, base, updates)
    interpreted = _maintain(strategy, 4, 2, base, updates, interpreted=True)
    assert sharded == serial == interpreted
    post = Bag(base)
    for update in updates:
        post = post.union(update.relations["M"])
    assert sharded == evaluate_bag(
        genre_selfjoin_query(), Environment(relations={"M": post})
    )


@given(
    shards=st.sampled_from([2, 3, 8]),
    batches=st.lists(
        st.lists(
            st.tuples(
                st.sampled_from(["m0", "m1", "m2", "m3", "m4", "m5"]),
                st.sampled_from(["g0", "g1"]),
                st.sampled_from(["d0", "d1"]),
                st.integers(-2, 2),
            ),
            min_size=1,
            max_size=3,
        ),
        max_size=4,
    ),
)
@settings(max_examples=20, deadline=None)
def test_random_streams_sharded_equals_single_shard_property(shards, batches):
    """Random mixed-sign streams: any shard count ≡ single shard ≡ seed result."""
    base = Bag([("m0", "g0", "d0"), ("m1", "g1", "d0"), ("m2", "g0", "d1")])
    updates = [
        Update(relations={"M": Bag.from_pairs([(row[:3], row[3]) for row in batch])})
        for batch in batches
    ]
    sharded = _maintain("classic", shards, 2, base, updates)
    serial = _maintain("classic", 1, 0, base, updates)
    assert sharded == serial
    post = base
    for update in updates:
        post = post.union(update.relations["M"])
    assert sharded == evaluate_bag(
        genre_selfjoin_query(), Environment(relations={"M": post})
    )


# --------------------------------------------------------------------------- #
# Concurrent refresh: determinism, error propagation, escape hatch
# --------------------------------------------------------------------------- #
def _multi_view_run(workers):
    with forced_shards(4), forced_parallel_views(workers):
        movies = generate_movies(50, seed=11)
        engine = movies_engine(movies, expected_update_size=2)
        catalog = build.for_in("x", ast.Relation("M", MOVIE_SCHEMA), ast.SngVar("x"))
        views = [
            engine.view("selfjoin", genre_selfjoin_query(), strategy="classic"),
            engine.view("catalog", catalog, strategy="recursive"),
            engine.view("nested", genre_selfjoin_query(), strategy="nested"),
            engine.view("naive", catalog, strategy="naive"),
        ]
        engine.apply_stream(
            movie_update_stream(5, 3, existing=movies, deletion_ratio=0.3, seed=13)
        )
        return tuple(view.result() for view in views)


def test_concurrent_refresh_is_deterministic():
    first = _multi_view_run(2)
    second = _multi_view_run(2)
    serial = _multi_view_run(0)
    inline = _multi_view_run(1)
    assert first == second == serial == inline


def test_threaded_refresh_actually_uses_worker_threads():
    seen_threads = set()

    class Probe:
        accepts_refresh_context = True

        def on_update(self, update, shredded_delta, context=None):
            seen_threads.add(threading.current_thread().name)

    with forced_parallel_views(2):
        database = Database()
        database.register("R", bag_of(BASE), Bag(["a"]))
        for _ in range(2):
            database.register_view(Probe())
        database.apply_update(Update(relations={"R": Bag(["b"])}))
    assert any(name.startswith("repro-view-refresh") for name in seen_threads)


def test_parallel_refresh_propagates_first_error_and_aborts_update():
    class Exploding:
        accepts_refresh_context = True

        def on_update(self, update, shredded_delta, context=None):
            raise RuntimeError("boom")

    with forced_parallel_views(2):
        database = Database()
        database.register("R", bag_of(BASE), Bag(["a"]))
        database.register_view(Exploding())
        database.register_view(Exploding())
        with pytest.raises(RuntimeError, match="boom"):
            database.apply_update(Update(relations={"R": Bag(["b"])}))
        # Views run pre-mutation, so the failed update left the store alone.
        assert database.relation("R") == Bag(["a"])


def test_legacy_views_refresh_on_coordinating_thread_before_pool():
    """Legacy backends rebuild their own environments (freezing shared store
    builders), so they must never run on pool threads or overlap the pool
    phase (finding from review)."""
    from repro.ivm.views import View

    events = []

    class Legacy(View):
        def on_update(self, update, shredded_delta):
            events.append(("legacy", threading.current_thread() is threading.main_thread()))

    class ContextAware(View):
        accepts_refresh_context = True

        def on_update(self, update, shredded_delta, context=None):
            events.append(("pool", None))

    with forced_parallel_views(2):
        database = Database()
        database.register("R", bag_of(BASE), Bag(["a"]))
        database.register_view(ContextAware())
        database.register_view(Legacy())
        database.register_view(ContextAware())
        database.apply_update(Update(relations={"R": Bag(["b"])}))
    legacy_events = [event for event in events if event[0] == "legacy"]
    assert legacy_events == [("legacy", True)]
    # The legacy refresh completed before any pool task started.
    assert events[0] == ("legacy", True)


def test_legacy_two_argument_view_subclass_still_dispatches():
    """A third-party backend subclassing View with the pre-PR-5 two-argument
    ``on_update`` must keep working under the scheduler (context is opt-in)."""
    from repro.ivm.views import View

    calls = []

    class LegacyBackend(View):
        def on_update(self, update, shredded_delta):
            calls.append(update)

    with forced_parallel_views(1):
        database = Database()
        database.register("R", bag_of(BASE), Bag(["a"]))
        database.register_view(LegacyBackend())
        database.apply_update(Update(relations={"R": Bag(["b"])}))
    assert len(calls) == 1
    assert database.relation("R") == Bag(["a", "b"])


def test_storage_shards_reporting_matches_created_stores():
    """The reported shard count is fixed at construction, even when the
    REPRO_SHARDS environment changes afterwards (finding from review)."""
    with forced_shards(4):
        engine = Engine()
    engine.dataset("R", bag_of(BASE), Bag(["a"]))  # created outside the block
    assert engine.database.storage_shards() == 4
    report = engine.storage_report()
    assert report["shards"] == 4
    assert all(entry["shards"] == 4 for entry in report["nested"]["stores"])


def test_legacy_hatch_skips_shared_context():
    received = []

    class Recorder:
        accepts_refresh_context = True

        def on_update(self, update, shredded_delta, context=None):
            received.append(context)

    database = Database()
    database.register("R", bag_of(BASE), Bag(["a"]))
    database.register_view(Recorder())
    with forced_parallel_views(0):
        database.apply_update(Update(relations={"R": Bag(["b"])}))
    with forced_parallel_views(1):
        database.apply_update(Update(relations={"R": Bag(["c"])}))
    assert received[0] is None
    assert isinstance(received[1], RefreshContext)


def test_resolve_view_workers_precedence():
    with forced_parallel_views(3):
        assert resolve_view_workers(None) == 3
        assert resolve_view_workers(0) == 0
    with forced_parallel_views(None):
        assert resolve_view_workers(7) == 7
        assert resolve_view_workers(None) >= 1


def test_scheduler_runs_all_tasks_and_resizes():
    order = []
    scheduler = ViewRefreshScheduler(2)
    scheduler.run([lambda index=index: order.append(index) for index in range(5)])
    assert sorted(order) == [0, 1, 2, 3, 4]
    scheduler.resize(1)
    scheduler.run([lambda: order.append("serial")])
    assert order[-1] == "serial"
    scheduler.shutdown()


# --------------------------------------------------------------------------- #
# Shared refresh context
# --------------------------------------------------------------------------- #
def test_refresh_context_environments_are_pre_update_snapshots():
    database = Database()
    database.register("R", bag_of(BASE), Bag(["a"]))
    update = Update(relations={"R": Bag(["b"])})
    context = RefreshContext(database, update, database.shred_update(update))
    assert context.delta_environment().relations["R"] == Bag(["a"])
    assert context.relation_deltas[("R", 1)] == Bag(["b"])
    post = context.post_shredded_environment()
    assert post is context.post_shredded_environment()  # memoized
    flat_name = database.shredded_source_names("R")[0]
    assert post.relations[flat_name] == Bag(["a", "b"])


# --------------------------------------------------------------------------- #
# Nested strategy: active-label index stays consistent with a full scan
# --------------------------------------------------------------------------- #
TRIPLE_SCHEMA = bag_of(bag_of(bag_of(BASE)))


def _triple(rows):
    """Helper: a bag of bags of bags from plain lists."""
    return Bag([Bag([Bag(inner) for inner in outer]) for outer in rows])


def _nested_identity_engine(rows, shards=4, workers=1):
    with forced_shards(shards), forced_parallel_views(workers):
        engine = Engine()
        engine.dataset("R", TRIPLE_SCHEMA, _triple(rows))
        relation = ast.Relation("R", TRIPLE_SCHEMA)
        view = engine.view("v", build.for_in("x", relation, ast.SngVar("x")), strategy="nested")
        return engine, view


def _assert_active_index_consistent(view):
    backend = view.view
    for state in backend._dict_states:
        assert dict(state.active) == backend._scan_active(state), (
            f"active-label index diverged from scan at path {state.path!r}"
        )


def test_nested_active_label_index_tracks_deep_nesting():
    engine, view = _nested_identity_engine([[["a", "b"], ["c"]], [["d"]]])
    backend = view.view
    assert any(state.parent is not None for state in backend._dict_states), (
        "triple nesting should produce a child dictionary position"
    )
    _assert_active_index_consistent(view)
    engine.apply({"R": [_triple([[["x", "y"]]]).elements().__next__()]})
    _assert_active_index_consistent(view)
    # Deleting an outer element deactivates its labels (and, transitively,
    # the labels of its inner bags) without any flat-view scan.
    victim = next(iter(_triple([[["a", "b"], ["c"]]]).elements()))
    engine.apply({"R": {victim: -1}})
    _assert_active_index_consistent(view)
    with forced_interpretation(True), forced_shards(4):
        reference = Engine()
        reference.dataset("R", TRIPLE_SCHEMA, _triple([[["a", "b"], ["c"]], [["d"]]]))
        relation = ast.Relation("R", TRIPLE_SCHEMA)
        ref_view = reference.view(
            "v", build.for_in("x", relation, ast.SngVar("x")), strategy="nested"
        )
        reference.apply({"R": [next(iter(_triple([[["x", "y"]]]).elements()))]})
        reference.apply({"R": {victim: -1}})
    assert view.result() == ref_view.result()


def test_nested_vacuum_reconciles_active_index_and_drops_stale_entries():
    engine, view = _nested_identity_engine([[["a"], ["b"]], [["c"]]])
    victim = next(iter(_triple([[["a"], ["b"]]]).elements()))
    engine.apply({"R": {victim: -1}})
    backend = view.view
    stale_before = sum(len(state.entries) for state in backend._dict_states)
    removed = view.view.vacuum()
    assert removed >= 1
    assert sum(len(state.entries) for state in backend._dict_states) == stale_before - removed
    _assert_active_index_consistent(view)
    assert view.result() == _triple([[["c"]]])


def test_nested_negative_multiplicity_carriers():
    """Labels referenced only by negative-multiplicity elements stay active."""
    engine, view = _nested_identity_engine([[["a"]]])
    phantom = next(iter(_triple([[["p"]]]).elements()))
    engine.apply({"R": {phantom: -1}})  # net-negative outer element
    _assert_active_index_consistent(view)
    engine.apply({"R": {phantom: 1}})  # cancels back out
    _assert_active_index_consistent(view)
    assert view.result() == _triple([[["a"]]])


# --------------------------------------------------------------------------- #
# Reporting surfaces
# --------------------------------------------------------------------------- #
def test_explain_reports_shards_and_refresh_mode():
    with forced_shards(4), forced_parallel_views(2):
        engine = movies_engine(generate_movies(10, seed=3))
        engine.view("v", genre_selfjoin_query(), strategy="classic")
        plan = engine.explain("v")
        assert plan.shards == 4
        assert plan.parallel_apply == "threads(2)"
        assert "O(|Δ|/4)" in plan.apply_unit
        rendered = plan.render()
        assert "4 shard(s)" in rendered and "threads(2)" in rendered


@pytest.mark.skipif(
    not compilation_enabled(),
    reason="persistent-index registration requires the compiled pipeline",
)
def test_storage_report_aggregates_and_breaks_down_per_shard():
    with forced_shards(4):
        engine = movies_engine(generate_movies(20, seed=3))
        engine.view("v", genre_selfjoin_query(), strategy="classic")
        engine.apply({"M": [("x", "Drama", "d")]})
        report = engine.storage_report()
        assert report["shards"] == 4
        store_entry = next(
            entry for entry in report["nested"]["stores"] if entry["relation"] == "M"
        )
        assert store_entry["shards"] == 4
        assert store_entry["distinct"] == 21
        assert sum(shard["distinct"] for shard in store_entry["shard_stats"]) == 21
        index_entry = store_entry["indexes"][0]
        assert index_entry["entries"] == sum(
            shard["entries"] for shard in index_entry["per_shard"]
        )


def test_engine_kwargs_override_environment():
    engine = Engine(shards=2, parallel_views=0)
    engine.dataset("R", bag_of(BASE), Bag(["a"]))
    assert engine.database.storage_shards() == 2
    assert engine.database.view_refresh_workers() == 0
    assert engine.database.refresh_mode() == "serial-legacy"
