"""Tests for degrees (Theorem 2) and higher-order delta towers (Section 4.1)."""

import pytest

from repro.delta import degree, delta, delta_tower
from repro.errors import NotInFragmentError
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.analysis import referenced_sources
from repro.nrc.types import BASE, bag_of, tuple_of

MOVIE = tuple_of(BASE, BASE, BASE)
M = ast.Relation("M", bag_of(MOVIE))
R = ast.Relation("R", bag_of(bag_of(BASE)))


class TestDegree:
    def test_relation_has_degree_one(self):
        assert degree(M, ["M"]) == 1

    def test_untargeted_relation_has_degree_zero(self):
        assert degree(M, ["S"]) == 0

    def test_update_symbols_have_degree_zero(self):
        assert degree(ast.DeltaRelation("M", bag_of(MOVIE)), ["M"]) == 0

    def test_constants_have_degree_zero(self):
        for expr in (ast.SngUnit(), ast.Empty(), ast.SngVar("x"), ast.InLabel("ι", ())):
            assert degree(expr, ["M"]) == 0

    def test_union_takes_max(self):
        expr = ast.Union((M, ast.Product((M, M))))
        assert degree(expr, ["M"]) == 2

    def test_for_and_product_add(self):
        assert degree(ast.Product((M, M)), ["M"]) == 2
        assert degree(ast.For("m", M, ast.For("m2", M, ast.SngVar("m2"))), ["M"]) == 2

    def test_flatten_and_negate_preserve(self):
        assert degree(ast.Flatten(R), ["R"]) == 1
        assert degree(ast.Negate(M), ["M"]) == 1

    def test_let_uses_bound_degree(self):
        expr = ast.Let("X", ast.Product((M, M)), ast.Product((ast.BagVar("X"), M)))
        assert degree(expr, ["M"]) == 3

    def test_filter_example(self):
        query = build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("a")), "x")
        assert degree(query, ["M"]) == 1

    def test_unrestricted_sng_rejected(self, related):
        with pytest.raises(NotInFragmentError):
            degree(related, ["M"])

    def test_dictionary_constructs(self):
        body = ast.For("m2", M, ast.SngProj("m2", (0,)))
        dictionary = ast.DictSingleton("ι", ("m",), body)
        assert degree(dictionary, ["M"]) == 1
        lookup = ast.DictLookup(ast.DictVar("D", bag_of(BASE)), "l")
        assert degree(lookup, ["D"]) == 1
        assert degree(lookup, ["M"]) == 0


class TestTheorem2:
    """deg(δ(h)) = deg(h) − 1 for input-dependent h."""

    @pytest.mark.parametrize(
        "query",
        [
            M,
            ast.Product((M, M)),
            ast.Product((M, M, M)),
            ast.Flatten(R),
            ast.Product((ast.Flatten(R), ast.Flatten(R))),
            ast.For("m", M, ast.For("m2", M, ast.SngProj("m2", (0,)))),
            ast.Union((M, ast.Product((M, M)))),
        ],
    )
    def test_delta_lowers_degree_by_one(self, query):
        targets = sorted(referenced_sources(query))
        original = degree(query, targets)
        derived = degree(delta(query, targets), targets)
        assert derived == original - 1

    def test_repeated_deltas_reach_zero(self):
        query = ast.Product((M, M, M))
        current = query
        for expected in (3, 2, 1, 0):
            assert degree(current, ["M"]) == expected
            if expected:
                current = delta(current, ["M"], order=4 - expected)


class TestDeltaTowers:
    def test_tower_height_equals_degree(self, selfjoin_query):
        tower = delta_tower(selfjoin_query, ["R"])
        assert tower.height == 2
        assert tower.degrees() == (2, 1, 0)

    def test_tower_levels_are_accessible(self, selfjoin_query):
        tower = delta_tower(selfjoin_query, ["R"])
        assert tower.query == selfjoin_query
        assert tower.level(0) == selfjoin_query
        assert tower.level(2) == tower.levels[-1]

    def test_degree_zero_query_has_flat_tower(self):
        tower = delta_tower(ast.SngUnit(), ["M"])
        assert tower.height == 0

    def test_max_height_truncates(self):
        query = ast.Product((M, M, M))
        tower = delta_tower(query, ["M"], max_height=1)
        assert tower.height == 1

    def test_tower_of_degree_five(self):
        query = ast.Product(tuple(ast.Flatten(R) for _ in range(5)))
        tower = delta_tower(query, ["R"])
        assert tower.height == 5
        assert tower.degrees() == (5, 4, 3, 2, 1, 0)

    def test_last_level_mentions_only_updates(self, selfjoin_query):
        tower = delta_tower(selfjoin_query, ["R"])
        assert referenced_sources(tower.levels[-1]) == frozenset()
