"""Property-based tests: bags form a commutative group and a monad.

The commutative-group structure of ``(Bag, ⊎, ⊖, ∅)`` is exactly what makes
delta queries exist (Section 3), so these invariants are checked on random
bags with positive and negative multiplicities.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bag import Bag, EMPTY_BAG

elements = st.one_of(st.integers(-5, 5), st.text(alphabet="abc", max_size=2))
multiplicities = st.integers(min_value=-4, max_value=4)
bags = st.dictionaries(elements, multiplicities, max_size=6).map(Bag.from_mapping)


@given(bags, bags)
def test_union_is_commutative(left, right):
    assert left.union(right) == right.union(left)


@given(bags, bags, bags)
def test_union_is_associative(a, b, c):
    assert a.union(b).union(c) == a.union(b.union(c))


@given(bags)
def test_empty_is_neutral(bag):
    assert bag.union(EMPTY_BAG) == bag
    assert EMPTY_BAG.union(bag) == bag


@given(bags)
def test_negation_is_an_inverse(bag):
    assert bag.union(bag.negate()) == EMPTY_BAG


@given(bags)
def test_double_negation_is_identity(bag):
    assert bag.negate().negate() == bag


@given(bags, bags)
def test_any_two_bags_differ_by_a_delta(old, new):
    """Semantics of the group: ΔQ = Qnew ⊖ Qold always reconciles the two."""
    delta = new.difference(old)
    assert old.union(delta) == new


@given(bags, st.integers(min_value=-3, max_value=3))
def test_scaling_distributes_over_union(bag, factor):
    assert bag.union(bag).scale(factor) == bag.scale(factor).union(bag.scale(factor))


@given(bags)
def test_cardinality_is_non_negative(bag):
    assert bag.cardinality() >= 0
    assert bag.cardinality() >= abs(bag.total_multiplicity())


@given(bags, bags)
def test_flat_map_distributes_over_union(left, right):
    """for x in (e1 ⊎ e2) union f(x)  ==  (for x in e1 …) ⊎ (for x in e2 …)."""
    func = lambda x: Bag([("wrapped", x)])
    assert left.union(right).flat_map(func) == left.flat_map(func).union(right.flat_map(func))


@given(bags, bags)
def test_product_cardinality_multiplies(left, right):
    product = left.product(right)
    # Cancellation may only reduce the count, never increase it.
    assert product.cardinality() <= left.cardinality() * right.cardinality()


@given(bags)
def test_hash_equal_bags_have_equal_hash(bag):
    rebuilt = Bag.from_mapping(bag.as_dict())
    assert bag == rebuilt
    assert hash(bag) == hash(rebuilt)
