"""Tests for the cost interpretation C[[·]] (Figure 5), tcost and Theorem 4."""

import pytest

from repro.bag import Bag
from repro.cost import (
    ATOM_COST,
    BagCost,
    CostContext,
    TupleCost,
    cost_of,
    delta_is_cheaper,
    size_of,
    tcost,
)
from repro.delta import delta
from repro.errors import CostModelError
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.types import BASE, bag_of, tuple_of
from repro.workloads import MOVIE_SCHEMA, related_query

MOVIE = tuple_of(BASE, BASE, BASE)
M = ast.Relation("M", bag_of(MOVIE))
R = ast.Relation("R", bag_of(bag_of(BASE)))


def movie_context(n=10, d=2):
    movies = Bag([(f"m{i}", "g", "d") for i in range(n)])
    update = Bag([(f"u{i}", "g", "d") for i in range(d)])
    return CostContext.from_instances(relations={"M": movies}, deltas={("M", 1): update})


class TestCostRules:
    def test_relation_cost_is_its_size(self):
        context = movie_context(5)
        assert cost_of(M, context) == context.relations["M"]

    def test_missing_relation_estimate(self):
        with pytest.raises(CostModelError):
            cost_of(M, CostContext())

    def test_constants(self):
        context = CostContext()
        assert cost_of(ast.SngUnit(), context) == BagCost(1, ATOM_COST)
        assert cost_of(ast.Empty(), context).cardinality == 1
        assert cost_of(ast.InLabel("ι", ()), context) == BagCost(1, ATOM_COST)

    def test_for_multiplies_cardinalities(self):
        context = movie_context(7)
        query = ast.For("m", M, ast.SngProj("m", (0,)))
        assert cost_of(query, context).cardinality == 7

    def test_nested_for_is_quadratic(self):
        context = movie_context(7)
        query = ast.For("m", M, ast.For("m2", M, ast.SngProj("m2", (0,))))
        assert cost_of(query, context).cardinality == 49

    def test_product_cost(self):
        context = movie_context(5)
        cost = cost_of(ast.Product((M, M)), context)
        assert cost.cardinality == 25
        assert isinstance(cost.element, TupleCost)

    def test_union_is_sup(self):
        context = movie_context(5)
        query = ast.Union((M, ast.Empty()))
        assert cost_of(query, context).cardinality == 5

    def test_flatten_multiplies_inner_cardinality(self):
        nested = Bag([Bag(["a", "b", "c"]), Bag(["d"])])
        context = CostContext.from_instances(relations={"R": nested})
        assert cost_of(ast.Flatten(R), context).cardinality == 2 * 3

    def test_let_binds_cost(self):
        context = movie_context(4)
        query = ast.Let("X", M, ast.Product((ast.BagVar("X"), ast.BagVar("X"))))
        assert cost_of(query, context).cardinality == 16

    def test_sng_star_wraps_cost(self):
        context = movie_context(4)
        assert cost_of(ast.Sng(M), context) == BagCost(1, cost_of(M, context))

    def test_example_6_related_cost(self):
        """C[[related[M]]] = |M|{⟨1, |M|{1}⟩} (Example 6)."""
        n = 6
        context = movie_context(n)
        cost = cost_of(related_query(), context)
        assert cost == BagCost(n, TupleCost((ATOM_COST, BagCost(n, ATOM_COST))))

    def test_dict_lookup_cost_uses_dictionary_estimate(self):
        lookup = ast.DictLookup(ast.DictVar("D", bag_of(BASE)), "l")
        context = CostContext(dictionaries={"D": BagCost(9, ATOM_COST)})
        assert cost_of(lookup, context) == BagCost(9, ATOM_COST)

    def test_dict_singleton_lookup_costs_its_body(self):
        body = ast.For("m2", M, ast.SngProj("m2", (0,)))
        lookup = ast.DictLookup(ast.DictSingleton("ι", ("m",), body, param_types=(MOVIE,)), "l")
        context = movie_context(8)
        assert cost_of(lookup, context).cardinality == 8


class TestTcostAndTheorem4:
    def test_tcost_of_shapes(self):
        assert tcost(ATOM_COST) == 1
        assert tcost(BagCost(5, ATOM_COST)) == 5
        assert tcost(TupleCost((ATOM_COST, BagCost(3, ATOM_COST)))) == 4
        assert tcost(BagCost(4, TupleCost((ATOM_COST, BagCost(3, ATOM_COST))))) == 16

    def test_example_6_running_time_bound(self):
        n = 6
        context = movie_context(n)
        assert tcost(cost_of(related_query(), context)) == n * (1 + n)

    @pytest.mark.parametrize(
        "query",
        [
            build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("g")), "x"),
            ast.For("m", M, ast.SngProj("m", (0,))),
            ast.Product((M, M)),
            ast.For("m", M, ast.For("m2", M, ast.SngProj("m2", (0,)))),
        ],
    )
    def test_theorem_4_delta_is_cheaper(self, query):
        """tcost(C[[δ(h)]]) < tcost(C[[h]]) for incremental updates."""
        context = movie_context(n=20, d=2)
        assert delta_is_cheaper(query, context, ["M"])

    def test_theorem_4_explicit_comparison(self):
        context = movie_context(n=50, d=1)
        query = ast.Product((M, M))
        original = tcost(cost_of(query, context))
        derived = tcost(cost_of(delta(query, ["M"]), context))
        assert derived < original

    def test_delta_not_cheaper_when_update_is_as_big_as_input(self):
        movies = Bag([(f"m{i}", "g", "d") for i in range(5)])
        context = CostContext.from_instances(
            relations={"M": movies}, deltas={("M", 1): movies}
        )
        query = ast.Product((M, M))
        assert not delta_is_cheaper(query, context, ["M"])
