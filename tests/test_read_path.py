"""The delta-bounded read path (sharded result stores, footprint probes,
versioned serve reads).

Three layers of the same invariant — reads cost what the delta touched,
never what the result holds:

* :class:`~repro.storage.ResultStore` — sharded view materializations whose
  retained snapshots copy-on-write only dirty shards; property tests pin
  sharded ≡ single-shard ≡ recomputation across every maintenance strategy,
  including negative deltas and retained-snapshot isolation.
* the nested view's footprint-bounded dictionary probes — the probe
  counters prove untouched labels are never visited, and the
  ``REPRO_NO_FOOTPRINT`` hatch reproduces the all-labels sweep bit for bit.
* the server's versioned reads — ``ETag`` / ``If-None-Match`` 304s with no
  body, and ``limit``/``offset`` pages that tile the full result exactly
  (differential paged ≡ full).
"""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bag import Bag
from repro.client.api import APIClient, APIError
from repro.client.resources import DatasetsClient, UpdatesClient, ViewsClient
from repro.engine import Engine
from repro.ivm import Database, NestedIVMView, Update
from repro.ivm.footprint import footprint_enabled, forced_no_footprint
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.serve import ProtocolError, ReproServer, ServerConfig
from repro.serve.protocol import encode_bag, encode_bag_page
from repro.storage import ResultStore
from repro.workloads import MOVIE_SCHEMA, related_query

GENRES = ("Drama", "Action", "Comedy")
DIRECTORS = ("Refn", "Mendes", "Howard")

movie_rows = st.tuples(
    st.text(alphabet="ABCDEF", min_size=1, max_size=3),
    st.sampled_from(GENRES),
    st.sampled_from(DIRECTORS),
)
movie_bags = st.dictionaries(movie_rows, st.integers(1, 2), max_size=6).map(Bag.from_mapping)
update_bags = st.dictionaries(movie_rows, st.integers(-1, 2), max_size=3).map(Bag.from_mapping)


def drama_filter() -> ast.Expr:
    """A flat IncNRC+ query the classic/recursive backends accept."""
    movies = ast.Relation("M", MOVIE_SCHEMA)
    return build.filter_query(
        movies, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x"
    )


def _guard(engine_or_db, update: Bag) -> Bag:
    """Drop deletions of tuples that are not present (negative deltas must
    stay meaningful)."""
    current = engine_or_db.relation("M")
    return Bag.from_pairs(
        (row, mult)
        for row, mult in update.items()
        if mult > 0 or current.multiplicity(row) >= -mult
    )


# --------------------------------------------------------------------------- #
# ResultStore: the sharded materialization container
# --------------------------------------------------------------------------- #
class TestResultStore:
    def test_single_shard_collapses_to_plain_bag(self):
        store = ResultStore("r", Bag(["a", "a", "b"]), shards=1)
        frozen = store.freeze()
        assert type(frozen) is Bag
        assert frozen == Bag(["a", "a", "b"])
        assert store.shards == 1

    def test_partition_round_trips_and_reads_shard_direct(self):
        bag = Bag.from_pairs([((i, "x"), 1 + i % 3) for i in range(50)])
        store = ResultStore("r", bag, shards=4)
        assert store.shards == 4
        assert store.freeze() == bag
        assert store.cardinality() == bag.cardinality()
        assert store.distinct_size() == bag.distinct_size()
        assert sorted(store.items()) == sorted(bag.items())
        assert store.multiplicity((3, "x")) == bag.multiplicity((3, "x"))
        assert store.multiplicity(("absent",)) == 0
        assert not store.is_empty()

    def test_repeated_freeze_returns_the_cached_snapshot(self):
        store = ResultStore("r", Bag(range(40)), shards=4)
        first = store.freeze()
        assert store.freeze() is first
        assert store.snapshot_freezes == 1
        store.apply_bag(Bag([1]))
        second = store.freeze()
        assert second is not first
        assert store.freeze() is second

    @pytest.mark.parametrize("shards", (1, 3, 8))
    def test_apply_bag_matches_bag_union(self, shards):
        base = Bag.from_pairs([((i,), 2) for i in range(30)])
        store = ResultStore("r", base, shards=shards)
        delta = Bag.from_pairs([((5,), -2), ((99,), 3), ((7,), 1)])
        store.apply_bag(delta)
        assert store.freeze() == base.union(delta)
        assert store.version == 1

    def test_retained_snapshot_isolated_from_later_deltas(self):
        base = Bag.from_pairs([((i,), 1) for i in range(20)])
        store = ResultStore("r", base, shards=4)
        snapshot = store.freeze()
        before = Bag.from_pairs(snapshot.items())
        store.apply_bag(Bag.from_pairs([((3,), -1), ((77,), 2)]))
        assert Bag.from_pairs(snapshot.items()) == before
        assert store.freeze() == base.union(
            Bag.from_pairs([((3,), -1), ((77,), 2)])
        )

    def test_small_delta_copies_only_dirty_shards(self):
        """The zero-copy contract: a one-element delta re-freezes exactly one
        shard; the other shard snapshots are the same frozen objects."""
        base = Bag.from_pairs([((i,), 1) for i in range(64)])
        store = ResultStore("r", base, shards=8)
        old = store.freeze()
        store.apply_bag(Bag([(999,)]))
        new = store.freeze()
        old_shards = old._shard_bags
        new_shards = new._shard_bags
        shared = sum(
            1 for a, b in zip(old_shards, new_shards) if a is b
        )
        assert shared == len(old_shards) - 1

    def test_describe_is_json_serializable(self):
        store = ResultStore("r", Bag(range(30)), shards=4)
        description = json.loads(json.dumps(store.describe()))
        assert description["result"] == "r"
        assert description["shards"] == 4


# --------------------------------------------------------------------------- #
# Property: sharded ≡ single-shard ≡ recomputation, all four strategies
# --------------------------------------------------------------------------- #
QUERY_OF = {
    "naive": related_query,
    "classic": drama_filter,
    "recursive": drama_filter,
    "nested": related_query,
}


@pytest.mark.parametrize("strategy", sorted(QUERY_OF))
@settings(max_examples=15, deadline=None)
@given(movie_bags, st.lists(update_bags, min_size=1, max_size=3))
def test_sharded_result_store_equals_single_shard_and_recompute(
    strategy, instance, updates
):
    query = QUERY_OF[strategy]()
    sharded = Engine(shards=4)
    single = Engine(shards=1)
    for engine in (sharded, single):
        engine.dataset("M", MOVIE_SCHEMA, rows=instance)
    sharded_view = sharded.view("v", query, strategy=strategy)
    single_view = single.view("v", query, strategy=strategy)
    for update in updates:
        safe = _guard(sharded, update)
        sharded.apply({"M": safe})
        single.apply({"M": safe})
        expected = evaluate_bag(
            query, Environment(relations={"M": sharded.relation("M")})
        )
        assert sharded_view.result() == expected
        assert single_view.result() == expected


@settings(max_examples=15, deadline=None)
@given(movie_bags, update_bags)
def test_retained_snapshots_survive_negative_and_deep_updates(instance, update):
    """A reader holding a nested result keeps seeing the pre-update value
    while the store copy-on-writes underneath it — including deletions that
    rewrite inner bags of surviving outer rows (deep updates)."""
    engine = Engine(shards=4)
    engine.dataset("M", MOVIE_SCHEMA, rows=instance)
    handle = engine.view("related", related_query(), strategy="nested")
    retained = handle.result()
    before = Bag.from_pairs(retained.items())
    safe = _guard(engine, update)
    if safe.is_empty():
        return
    engine.apply({"M": safe})
    assert Bag.from_pairs(retained.items()) == before
    expected = evaluate_bag(
        related_query(), Environment(relations={"M": engine.relation("M")})
    )
    assert handle.result() == expected


def test_unchanged_view_read_returns_cached_snapshot_without_freezing():
    """Satellite: repeated reads of an unchanged view are free — the same
    frozen snapshot object comes back and the store freezes nothing new."""
    engine = Engine(shards=4)
    engine.dataset(
        "M",
        MOVIE_SCHEMA,
        rows=Bag([("A", "Drama", "Refn"), ("B", "Action", "Mendes")]),
    )
    for strategy in ("classic", "recursive", "nested"):
        handle = engine.view(f"v_{strategy}", QUERY_OF[strategy](), strategy=strategy)
        first = handle.result()
        assert handle.result() is first
        store = handle.view.result_store()
        assert store is not None
        frozen_count = store.snapshot_freezes
        for _ in range(5):
            handle.result()
        assert store.snapshot_freezes == frozen_count


# --------------------------------------------------------------------------- #
# Footprint-bounded dictionary probes
# --------------------------------------------------------------------------- #
ROWS = [
    ("A", "Drama", "Refn"),
    ("B", "Action", "Mendes"),
    ("C", "Comedy", "Howard"),
    ("D", "Drama", "Refn"),
    ("E", "Action", "Howard"),
]


def _nested_view(rows=ROWS):
    database = Database()
    database.register("M", MOVIE_SCHEMA, Bag(rows))
    view = NestedIVMView(related_query(), database)
    return database, view


class TestFootprintProbes:
    def test_related_query_delta_is_analyzable(self):
        _, view = _nested_view()
        footprint = view.read_stats()["footprint"]
        assert footprint["enabled"] is footprint_enabled()
        assert footprint["planned"] >= 1

    def test_untouched_labels_are_never_probed(self):
        database, view = _nested_view()
        database.apply_update(
            Update(relations={"M": Bag([("F", "Drama", "Refn")])})
        )
        probes = view.read_stats()["probes"]
        assert probes["full_sweeps"] == 0
        assert probes["footprint_sweeps"] >= 1
        # Every probed label was justified by the delta's key footprint, and
        # the labels outside it (Action/Mendes, Comedy/Howard, ...) were
        # skipped without being visited.
        assert probes["dict_probes"] == probes["footprint_probes"]
        assert probes["skipped_labels"] > 0
        expected = evaluate_bag(
            related_query(), Environment(relations={"M": database.relation("M")})
        )
        assert view.result() == expected

    def test_probe_count_bounded_by_delta_label_footprint(self):
        """The counter the acceptance criterion pins: probes ≤ the number of
        dictionary entries whose key shares the delta row's genre or
        director (its label footprint), strictly fewer than all entries."""
        database, view = _nested_view()
        delta_row = ("F", "Drama", "Refn")
        database.apply_update(Update(relations={"M": Bag([delta_row])}))
        probes = view.read_stats()["probes"]
        distinct_movies = set(ROWS) | {delta_row}
        bound = sum(
            1
            for name, gen, director in distinct_movies
            if gen == delta_row[1] or director == delta_row[2]
        )
        assert 0 < probes["footprint_probes"] <= bound < len(distinct_movies)

    def test_disabled_footprint_sweeps_all_labels_same_result(self):
        database, view = _nested_view()
        update = Update(relations={"M": Bag([("F", "Drama", "Refn")])})
        database.apply_update(update)
        fast = view.read_stats()["probes"]

        with forced_no_footprint():
            database_slow, view_slow = _nested_view()
            database_slow.apply_update(update)
            slow = view_slow.read_stats()["probes"]
        assert slow["footprint_sweeps"] == 0
        assert slow["full_sweeps"] >= 1
        assert slow["dict_probes"] > fast["dict_probes"]
        assert view_slow.result() == view.result()

    @settings(max_examples=15, deadline=None)
    @given(movie_bags, update_bags)
    def test_footprint_probes_preserve_correctness(self, instance, update):
        database = Database()
        database.register("M", MOVIE_SCHEMA, instance)
        view = NestedIVMView(related_query(), database)
        safe = _guard(database, update)
        database.apply_update(Update(relations={"M": safe}))
        expected = evaluate_bag(
            related_query(), Environment(relations={"M": database.relation("M")})
        )
        assert view.result() == expected
        probes = view.read_stats()["probes"]
        # Whatever path was taken, every probe is accounted for by exactly
        # one of the three selection modes.
        assert (
            probes["footprint_sweeps"] + probes["support_sweeps"] + probes["full_sweeps"]
            >= 0
        )

    def test_storage_report_carries_named_read_path(self):
        engine = Engine(shards=4)
        engine.dataset("M", MOVIE_SCHEMA, rows=Bag(ROWS))
        engine.view("related", related_query(), strategy="nested")
        report = engine.storage_report()
        entries = {entry["name"]: entry for entry in report["read_path"]}
        assert "related" in entries
        entry = entries["related"]
        assert entry["strategy"] == "nested"
        assert "probes" in entry and "result_store" in entry
        assert "backend_id" not in entry
        json.dumps(report)  # the serve layer ships this verbatim


# --------------------------------------------------------------------------- #
# Wire pages
# --------------------------------------------------------------------------- #
class TestEncodeBagPage:
    def test_default_page_reduces_to_encode_bag(self):
        bag = Bag.from_pairs([((i,), 1 + i % 2) for i in range(10)])
        assert encode_bag_page(bag) == encode_bag(bag)

    def test_pages_tile_the_full_encoding(self):
        bag = Bag.from_pairs([((i,), 1 + i % 3) for i in range(23)])
        full = encode_bag(bag)["pairs"]
        tiled = []
        offset = 0
        while True:
            page = encode_bag_page(bag, limit=4, offset=offset)
            tiled.extend(page["pairs"])
            if page["page"]["returned"] == 0:
                break
            offset += page["page"]["returned"]
        assert tiled == full

    def test_page_metadata(self):
        bag = Bag(range(10))
        page = encode_bag_page(bag, limit=4, offset=8)
        assert page["page"] == {
            "offset": 8,
            "limit": 4,
            "returned": 2,
            "remaining": 0,
        }
        assert page["distinct"] == 10 and page["cardinality"] == 10

    def test_bad_windows_rejected(self):
        with pytest.raises(ProtocolError):
            encode_bag_page(Bag(["a"]), limit=-1)
        with pytest.raises(ProtocolError):
            encode_bag_page(Bag(["a"]), offset=-1)


# --------------------------------------------------------------------------- #
# Versioned serve reads: ETag / 304 / paging, end to end
# --------------------------------------------------------------------------- #
DRAMAS_SPEC = {
    "from": "M",
    "var": "m",
    "where": ["eq", ["field", "m", "gen"], ["const", "Drama"]],
    "select": [["field", "m", "name"]],
}


@pytest.fixture
def server():
    with ReproServer(ServerConfig(port=0)) as instance:
        yield instance


@pytest.fixture
def api(server):
    return APIClient(server.url, max_retries=2, sleep=lambda _: None)


def _seed(api):
    datasets = DatasetsClient(api)
    views = ViewsClient(api)
    rows = [
        [f"m{i}", "Drama" if i % 2 else "Noir", f"d{i % 3}"] for i in range(20)
    ]
    datasets.create("M", fields=["name", "gen", "dir"], rows=rows)
    views.create("dramas", DRAMAS_SPEC)
    return datasets, views, UpdatesClient(api)


class TestVersionedReads:
    def test_matching_etag_is_a_bodyless_304(self, server, api):
        _seed(api)
        views = ViewsClient(api)
        full = views.show("dramas")
        url = f"{server.url}/v1/default/views/dramas"
        request = urllib.request.Request(
            url, headers={"If-None-Match": f'"{full["version"]}"'}
        )
        with pytest.raises(urllib.error.HTTPError) as info:
            urllib.request.urlopen(request)
        assert info.value.status == 304
        assert info.value.read() == b""
        assert info.value.headers.get("ETag") == f'"{full["version"]}"'

    def test_client_decodes_304_as_unchanged(self, api):
        _seed(api)
        views = ViewsClient(api)
        full = views.show("dramas")
        unchanged = views.show("dramas", etag=full["version"])
        assert unchanged["unchanged"] and unchanged["not_modified"]
        assert unchanged["version"] == full["version"]
        # A stale ETag gets the fresh body.
        fresh = views.show("dramas", etag=full["version"] - 1)
        assert not fresh.get("unchanged")
        assert fresh["pairs"] == full["pairs"]

    def test_etag_poll_sees_writes(self, api):
        _seed(api)
        views = ViewsClient(api)
        updates = UpdatesClient(api)
        full = views.show("dramas")
        updates.insert("M", [["new", "Drama", "d9"]])
        fresh = views.show("dramas", etag=full["version"])
        assert not fresh.get("unchanged")
        assert fresh["version"] > full["version"]
        assert "new" in [pair[0] for pair in fresh["pairs"]]

    def test_since_version_still_supported(self, api):
        _seed(api)
        views = ViewsClient(api)
        full = views.show("dramas")
        assert views.show("dramas", since_version=full["version"])["unchanged"]

    def test_paged_view_read_equals_full(self, api):
        _seed(api)
        views = ViewsClient(api)
        full = views.show("dramas")
        for limit in (1, 3, 7):
            tiled = []
            offset = 0
            while True:
                page = views.show("dramas", limit=limit, offset=offset)
                assert page["version"] == full["version"]
                assert len(page["pairs"]) <= limit
                tiled.extend(page["pairs"])
                if page["page"]["returned"] == 0:
                    break
                offset += page["page"]["returned"]
            assert tiled == full["pairs"]

    def test_dataset_and_snapshot_reads_are_versioned_and_paged(self, api):
        datasets, views, updates = _seed(api)
        snapshot = updates.snapshot()
        assert updates.snapshot(etag=snapshot["version"])["unchanged"]
        assert datasets.show("M", etag=snapshot["version"])["unchanged"]
        page = datasets.show("M", limit=5, offset=5)
        assert page["page"]["offset"] == 5 and page["page"]["returned"] == 5
        paged_snapshot = updates.snapshot(limit=2)
        for encoded in list(paged_snapshot["datasets"].values()) + list(
            paged_snapshot["views"].values()
        ):
            assert len(encoded["pairs"]) <= 2

    def test_bad_page_params_are_rejected(self, api):
        _seed(api)
        views = ViewsClient(api)
        for kwargs in ({"limit": -1}, {"offset": -2}):
            with pytest.raises(APIError) as info:
                views.show("dramas", **kwargs)
            assert info.value.status == 400
