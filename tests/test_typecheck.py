"""Unit tests for type inference (Figure 3 typing rules + label constructs)."""

import pytest

from repro.errors import TypeCheckError
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.typecheck import UnknownType, infer_type, join_types, project_type
from repro.nrc.types import (
    BASE,
    BagType,
    DictType,
    LABEL,
    LabelType,
    UNIT,
    bag_of,
    tuple_of,
)

MOVIE = tuple_of(BASE, BASE, BASE)
M = ast.Relation("M", bag_of(MOVIE))


class TestCoreRules:
    def test_relation_has_its_schema(self):
        assert infer_type(M) == bag_of(MOVIE)

    def test_delta_relation_has_schema(self):
        assert infer_type(ast.DeltaRelation("M", bag_of(MOVIE))) == bag_of(MOVIE)

    def test_unbound_bag_var_rejected(self):
        with pytest.raises(TypeCheckError):
            infer_type(ast.BagVar("X"))

    def test_bag_var_from_context(self):
        assert infer_type(ast.BagVar("X"), gamma={"X": bag_of(BASE)}) == bag_of(BASE)

    def test_let_binds_bag_var(self):
        expr = ast.Let("X", M, ast.BagVar("X"))
        assert infer_type(expr) == bag_of(MOVIE)

    def test_let_restores_outer_binding(self):
        expr = ast.Let("X", M, ast.BagVar("X"))
        assert infer_type(expr, gamma={"X": bag_of(BASE)}) == bag_of(MOVIE)
        # And the outer binding is unaffected for a sibling expression.
        assert infer_type(ast.BagVar("X"), gamma={"X": bag_of(BASE)}) == bag_of(BASE)

    def test_sng_var(self):
        assert infer_type(ast.SngVar("x"), pi={"x": MOVIE}) == bag_of(MOVIE)

    def test_sng_var_unbound(self):
        with pytest.raises(TypeCheckError):
            infer_type(ast.SngVar("x"))

    def test_sng_proj(self):
        assert infer_type(ast.SngProj("x", (1,)), pi={"x": MOVIE}) == bag_of(BASE)

    def test_sng_proj_out_of_range(self):
        with pytest.raises(TypeCheckError):
            infer_type(ast.SngProj("x", (5,)), pi={"x": MOVIE})

    def test_sng_proj_on_non_product(self):
        with pytest.raises(TypeCheckError):
            infer_type(ast.SngProj("x", (0,)), pi={"x": BASE})

    def test_sng_unit(self):
        assert infer_type(ast.SngUnit()) == bag_of(UNIT)

    def test_sng_wraps_bags(self):
        assert infer_type(ast.Sng(M)) == bag_of(bag_of(MOVIE))

    def test_empty_polymorphic(self):
        inferred = infer_type(ast.Empty())
        assert isinstance(inferred, BagType)
        assert isinstance(inferred.element, UnknownType)

    def test_empty_annotated(self):
        assert infer_type(ast.Empty(BASE)) == bag_of(BASE)

    def test_for_binds_element_var(self):
        expr = ast.For("m", M, ast.SngProj("m", (0,)))
        assert infer_type(expr) == bag_of(BASE)

    def test_for_requires_bag_source(self):
        expr = ast.For("m", ast.SngUnit(), ast.SngVar("m"))
        assert infer_type(expr) == bag_of(UNIT)

    def test_flatten(self):
        nested = ast.Relation("R", bag_of(bag_of(BASE)))
        assert infer_type(ast.Flatten(nested)) == bag_of(BASE)

    def test_flatten_rejects_flat_bags(self):
        with pytest.raises(TypeCheckError):
            infer_type(ast.Flatten(M))

    def test_product_builds_tuples(self):
        expr = ast.Product((M, ast.Relation("S", bag_of(BASE))))
        assert infer_type(expr) == bag_of(tuple_of(MOVIE, BASE))

    def test_union_joins_compatible_types(self):
        assert infer_type(ast.Union((M, M))) == bag_of(MOVIE)

    def test_union_with_polymorphic_empty(self):
        assert infer_type(ast.Union((ast.Empty(), M))) == bag_of(MOVIE)

    def test_union_of_incompatible_types_rejected(self):
        other = ast.Relation("S", bag_of(tuple_of(BASE, BASE)))
        with pytest.raises(TypeCheckError):
            infer_type(ast.Union((M, other)))

    def test_negate_preserves_type(self):
        assert infer_type(ast.Negate(M)) == bag_of(MOVIE)

    def test_predicate_returns_unit_bag(self):
        predicate = preds.eq(preds.var_path("m", 0), preds.const("Drive"))
        assert infer_type(ast.Pred(predicate), pi={"m": MOVIE}) == bag_of(UNIT)

    def test_predicate_over_bag_component_rejected(self):
        nested = tuple_of(BASE, bag_of(BASE))
        predicate = preds.eq(preds.var_path("m", 1), preds.const("x"))
        with pytest.raises(TypeCheckError):
            infer_type(ast.Pred(predicate), pi={"m": nested})

    def test_predicate_with_unbound_var_rejected(self):
        predicate = preds.eq(preds.var_path("zz", 0), preds.const("a"))
        with pytest.raises(TypeCheckError):
            infer_type(ast.Pred(predicate))

    def test_full_query_typechecks(self, related):
        assert infer_type(related) == bag_of(tuple_of(BASE, bag_of(BASE)))


class TestLabelRules:
    def test_in_label(self):
        assert infer_type(ast.InLabel("ι", ("m",)), pi={"m": MOVIE}) == bag_of(LABEL)

    def test_in_label_unbound_param(self):
        with pytest.raises(TypeCheckError):
            infer_type(ast.InLabel("ι", ("m",)))

    def test_dict_singleton(self):
        body = ast.SngProj("m", (0,))
        expr = ast.DictSingleton("ι", ("m",), body, param_types=(MOVIE,))
        assert infer_type(expr) == DictType(bag_of(BASE))

    def test_dict_empty(self):
        assert infer_type(ast.DictEmpty(bag_of(BASE))) == DictType(bag_of(BASE))

    def test_dict_union_and_add(self):
        d = ast.DictEmpty(bag_of(BASE))
        assert infer_type(ast.DictUnion((d, d))) == DictType(bag_of(BASE))
        assert infer_type(ast.DictAdd((d, d))) == DictType(bag_of(BASE))

    def test_dict_var(self):
        assert infer_type(ast.DictVar("D", bag_of(BASE))) == DictType(bag_of(BASE))

    def test_dict_lookup(self):
        lookup = ast.DictLookup(ast.DictVar("D", bag_of(BASE)), "l")
        assert infer_type(lookup, pi={"l": LabelType()}) == bag_of(BASE)

    def test_dict_lookup_requires_label_key(self):
        lookup = ast.DictLookup(ast.DictVar("D", bag_of(BASE)), "l")
        with pytest.raises(TypeCheckError):
            infer_type(lookup, pi={"l": BASE})


class TestHelpers:
    def test_join_types_unknown_absorbs(self):
        unknown = UnknownType()
        assert join_types(unknown, BASE) == BASE
        assert join_types(BASE, unknown) == BASE

    def test_join_types_structural(self):
        assert join_types(bag_of(BASE), bag_of(BASE)) == bag_of(BASE)
        with pytest.raises(TypeCheckError):
            join_types(bag_of(BASE), tuple_of(BASE, BASE))

    def test_join_products_arity_mismatch(self):
        with pytest.raises(TypeCheckError):
            join_types(tuple_of(BASE, BASE), tuple_of(BASE, BASE, BASE))

    def test_project_type(self):
        nested = tuple_of(BASE, tuple_of(BASE, bag_of(BASE)))
        assert project_type(nested, (1, 1)) == bag_of(BASE)
        with pytest.raises(TypeCheckError):
            project_type(BASE, (0,))
