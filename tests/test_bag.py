"""Unit tests for the generalized bag (Z-multiplicities, group structure)."""

import pytest

from repro.bag import Bag, EMPTY_BAG


class TestConstruction:
    def test_from_iterable_counts_occurrences(self):
        bag = Bag(["a", "b", "a"])
        assert bag.multiplicity("a") == 2
        assert bag.multiplicity("b") == 1

    def test_from_pairs_sums_multiplicities(self):
        bag = Bag.from_pairs([("a", 2), ("a", 3), ("b", 1)])
        assert bag.multiplicity("a") == 5
        assert bag.multiplicity("b") == 1

    def test_from_pairs_drops_zero_entries(self):
        bag = Bag.from_pairs([("a", 2), ("a", -2)])
        assert bag.is_empty()

    def test_from_pairs_rejects_non_integer_multiplicities(self):
        with pytest.raises(TypeError):
            Bag.from_pairs([("a", 1.5)])

    def test_from_mapping(self):
        bag = Bag.from_mapping({"x": 3, "y": -1})
        assert bag.multiplicity("x") == 3
        assert bag.multiplicity("y") == -1

    def test_singleton(self):
        assert Bag.singleton("a").multiplicity("a") == 1
        assert Bag.singleton("a", 4).multiplicity("a") == 4
        assert Bag.singleton("a", 0) is EMPTY_BAG

    def test_empty_is_shared(self):
        assert Bag.empty() is EMPTY_BAG
        assert EMPTY_BAG.is_empty()


class TestGroupStructure:
    def test_union_sums_multiplicities(self):
        left = Bag.from_pairs([("a", 1), ("b", 2)])
        right = Bag.from_pairs([("b", 3), ("c", 1)])
        combined = left.union(right)
        assert combined.multiplicity("a") == 1
        assert combined.multiplicity("b") == 5
        assert combined.multiplicity("c") == 1

    def test_union_cancels_to_empty(self):
        left = Bag.from_pairs([("a", 2)])
        right = Bag.from_pairs([("a", -2)])
        assert left.union(right).is_empty()

    def test_union_with_empty_is_identity(self):
        bag = Bag(["a", "b"])
        assert bag.union(EMPTY_BAG) is bag
        assert EMPTY_BAG.union(bag) is bag

    def test_union_rejects_non_bags(self):
        with pytest.raises(TypeError):
            Bag(["a"]).union(["b"])  # type: ignore[arg-type]

    def test_negate(self):
        bag = Bag.from_pairs([("a", 2), ("b", -1)])
        negated = bag.negate()
        assert negated.multiplicity("a") == -2
        assert negated.multiplicity("b") == 1

    def test_negate_is_inverse_for_union(self):
        bag = Bag.from_pairs([("a", 2), ("b", -3)])
        assert bag.union(bag.negate()).is_empty()

    def test_difference(self):
        left = Bag.from_pairs([("a", 3)])
        right = Bag.from_pairs([("a", 1), ("b", 1)])
        result = left.difference(right)
        assert result.multiplicity("a") == 2
        assert result.multiplicity("b") == -1

    def test_operator_sugar(self):
        a = Bag(["x"])
        b = Bag(["y"])
        assert (a + b).multiplicity("y") == 1
        assert (-a).multiplicity("x") == -1
        assert (a - a).is_empty()

    def test_scale(self):
        bag = Bag.from_pairs([("a", 2)])
        assert bag.scale(3).multiplicity("a") == 6
        assert bag.scale(0).is_empty()
        assert bag.scale(-1) == bag.negate()

    def test_scale_rejects_non_integer(self):
        with pytest.raises(TypeError):
            Bag(["a"]).scale(0.5)  # type: ignore[arg-type]


class TestQueries:
    def test_contains_and_len(self):
        bag = Bag(["a", "a", "b"])
        assert "a" in bag
        assert "z" not in bag
        assert len(bag) == 2

    def test_cardinality_counts_repetitions_and_abs(self):
        bag = Bag.from_pairs([("a", 3), ("b", -2)])
        assert bag.cardinality() == 5
        assert bag.total_multiplicity() == 1
        assert bag.distinct_size() == 2

    def test_expand_skips_negative(self):
        bag = Bag.from_pairs([("a", 2), ("b", -1)])
        assert sorted(bag.expand()) == ["a", "a"]

    def test_max_multiplicity(self):
        assert EMPTY_BAG.max_multiplicity() == 0
        assert Bag.from_pairs([("a", -5), ("b", 2)]).max_multiplicity() == 5

    def test_has_negative(self):
        assert Bag.from_pairs([("a", -1)]).has_negative()
        assert not Bag(["a"]).has_negative()

    def test_as_dict_returns_copy(self):
        bag = Bag(["a"])
        copy = bag.as_dict()
        copy["a"] = 99
        assert bag.multiplicity("a") == 1


class TestStructuralOperations:
    def test_map_merges_images(self):
        bag = Bag(["aa", "ab", "ba"])
        mapped = bag.map(lambda s: s[0])
        assert mapped.multiplicity("a") == 2
        assert mapped.multiplicity("b") == 1

    def test_filter(self):
        bag = Bag([1, 2, 3, 4])
        assert sorted(bag.filter(lambda x: x % 2 == 0).elements()) == [2, 4]

    def test_flat_map_scales_by_source_multiplicity(self):
        bag = Bag.from_pairs([("a", 2)])
        result = bag.flat_map(lambda x: Bag([x + "1", x + "2"]))
        assert result.multiplicity("a1") == 2
        assert result.multiplicity("a2") == 2

    def test_flat_map_requires_bag_results(self):
        with pytest.raises(TypeError):
            Bag(["a"]).flat_map(lambda x: [x])

    def test_product_multiplies_multiplicities(self):
        left = Bag.from_pairs([("a", 2)])
        right = Bag.from_pairs([("x", 3)])
        assert left.product(right).multiplicity(("a", "x")) == 6

    def test_flatten(self):
        nested = Bag([Bag(["a"]), Bag(["a", "b"])])
        flat = nested.flatten()
        assert flat.multiplicity("a") == 2
        assert flat.multiplicity("b") == 1

    def test_flatten_respects_outer_multiplicity(self):
        nested = Bag.from_pairs([(Bag(["a"]), 3)])
        assert nested.flatten().multiplicity("a") == 3

    def test_flatten_requires_bag_elements(self):
        with pytest.raises(TypeError):
            Bag(["a"]).flatten()

    def test_group_by(self):
        bag = Bag([("a", 1), ("a", 2), ("b", 3)])
        groups = bag.group_by(lambda row: row[0])
        assert set(groups) == {"a", "b"}
        assert groups["a"].cardinality() == 2


class TestEqualityAndHashing:
    def test_equality_ignores_insertion_order(self):
        assert Bag(["a", "b"]) == Bag(["b", "a"])

    def test_equality_respects_multiplicities(self):
        assert Bag(["a", "a"]) != Bag(["a"])

    def test_bags_are_hashable_and_nestable(self):
        inner = Bag(["x"])
        outer = Bag([inner, inner])
        assert outer.multiplicity(inner) == 2

    def test_hash_consistent_with_equality(self):
        assert hash(Bag(["a", "b"])) == hash(Bag(["b", "a"]))

    def test_repr_is_deterministic(self):
        assert repr(Bag(["b", "a"])) == repr(Bag(["a", "b"]))
        assert repr(EMPTY_BAG) == "Bag{}"
