"""Tests for the query shredding transformation (Figure 6) and Theorem 8."""

import pytest

from repro.bag import Bag
from repro.errors import ShreddingError
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.analysis import is_incremental_fragment, sng_occurrences
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.pretty import render
from repro.nrc.types import BASE, LABEL, BagType, bag_of, tuple_of
from repro.shredding import (
    BagContext,
    TupleContext,
    UnitContext,
    build_shredded_environment,
    flat_relation_name,
    input_dict_name,
    shred_query,
)
from repro.workloads import MOVIE_SCHEMA, PAPER_MOVIES, related_query

MOVIE = tuple_of(BASE, BASE, BASE)
M = ast.Relation("M", MOVIE_SCHEMA)
NESTED_SCHEMA = bag_of(bag_of(BASE))
R = ast.Relation("R", NESTED_SCHEMA)


def theorem_8_check(query, relations, schemas):
    """Shred → evaluate flat+context → nest equals direct evaluation."""
    direct = evaluate_bag(query, Environment(relations=relations))
    shredded = shred_query(query)
    environment = build_shredded_environment(relations, schemas)
    assert shredded.evaluate_nested(environment) == direct
    return shredded


class TestStructuralRules:
    def test_shredding_related_matches_section_2(self, related):
        shredded = shred_query(related)
        assert render(shredded.flat) == "for m in M__F union (sng(π_0(m)) × inL_ι0(m))"
        assert isinstance(shredded.context, TupleContext)
        assert isinstance(shredded.context.components[0], UnitContext)
        dictionary = shredded.context.components[1].dictionary
        assert isinstance(dictionary, ast.DictSingleton)
        assert dictionary.params == ("m",)
        assert "M__F" in render(dictionary.body)

    def test_shredded_queries_are_in_the_incremental_fragment(self, related):
        shredded = shred_query(related)
        assert is_incremental_fragment(shredded.flat)
        assert not sng_occurrences(shredded.flat)

    def test_relation_rule_renames_and_builds_input_context(self):
        shredded = shred_query(R)
        assert shredded.flat == ast.Relation(flat_relation_name("R"), bag_of(LABEL))
        assert isinstance(shredded.context, BagContext)
        assert shredded.context.dictionary == ast.DictVar(input_dict_name("R", ()), bag_of(BASE))

    def test_flatten_rule_introduces_lookup(self):
        shredded = shred_query(ast.Flatten(R))
        text = render(shredded.flat)
        assert "R__D(" in text
        assert shredded.output_type == bag_of(BASE)

    def test_flat_query_is_essentially_unchanged(self):
        query = build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x")
        shredded = shred_query(query)
        assert render(shredded.flat) == "for x in M__F where x.1 == 'Drama' union sng(x)"
        assert shredded.output_type == MOVIE_SCHEMA

    def test_product_rule_pairs_contexts(self):
        shredded = shred_query(ast.Product((R, R)))
        assert isinstance(shredded.context, TupleContext)
        assert len(shredded.context.components) == 2

    def test_union_rule_unions_contexts(self):
        shredded = shred_query(ast.Union((R, R)))
        # Identical contexts are collapsed rather than wrapped in DictUnion.
        assert isinstance(shredded.context, BagContext)

    def test_let_rule(self):
        query = ast.Let("X", ast.Union((R, R)), ast.Flatten(ast.BagVar("X")))
        shredded = shred_query(query)
        assert isinstance(shredded.flat, ast.Let)
        assert shredded.flat.name == "X__F"

    def test_let_rule_with_trivial_binding_is_inlined(self):
        query = ast.Let("X", R, ast.Flatten(ast.BagVar("X")))
        shredded = shred_query(query)
        assert flat_relation_name("R") in render(shredded.flat)

    def test_empty_and_negate(self):
        shredded = shred_query(ast.Negate(ast.Empty(MOVIE)))
        assert shredded.output_type == MOVIE_SCHEMA

    def test_unbound_bag_var_rejected(self):
        with pytest.raises(ShreddingError):
            shred_query(ast.BagVar("X"))

    def test_flat_output_type(self, related):
        shredded = shred_query(related)
        assert shredded.flat_output_type == bag_of(tuple_of(BASE, LABEL))


class TestTheorem8Equivalence:
    def test_related_on_paper_instance(self, related, paper_movies):
        theorem_8_check(related, {"M": paper_movies}, {"M": MOVIE_SCHEMA})

    def test_related_after_update(self, related, paper_movies, paper_update):
        theorem_8_check(related, {"M": paper_movies.union(paper_update)}, {"M": MOVIE_SCHEMA})

    def test_flatten_of_nested_input(self):
        nested = Bag([Bag(["a", "b"]), Bag(["b"])])
        theorem_8_check(ast.Flatten(R), {"R": nested}, {"R": NESTED_SCHEMA})

    def test_identity_over_nested_input(self):
        nested = Bag([Bag(["a", "b"]), Bag(["c"])])
        query = build.for_in("x", R, ast.SngVar("x"))
        theorem_8_check(query, {"R": nested}, {"R": NESTED_SCHEMA})

    def test_selfjoin_of_flattened_input(self, selfjoin_query):
        nested = Bag([Bag(["a"]), Bag(["b", "c"])])
        theorem_8_check(selfjoin_query, {"R": nested}, {"R": NESTED_SCHEMA})

    def test_query_with_two_sng_occurrences(self, paper_movies):
        by_genre = build.for_in(
            "m2",
            M,
            build.proj("m2", 0),
            condition=preds.eq(preds.var_path("m", 1), preds.var_path("m2", 1)),
        )
        by_director = build.for_in(
            "m2",
            M,
            build.proj("m2", 0),
            condition=preds.eq(preds.var_path("m", 2), preds.var_path("m2", 2)),
        )
        query = build.for_in(
            "m", M, build.tuple_bag(build.proj("m", 0), build.sng(by_genre), build.sng(by_director))
        )
        shredded = theorem_8_check(query, {"M": paper_movies}, {"M": MOVIE_SCHEMA})
        dictionaries = [d for _, d in __import__("repro.shredding", fromlist=["iter_context_dicts"]).iter_context_dicts(shredded.context)]
        assert len(dictionaries) == 2

    def test_doubly_nested_output(self, paper_movies):
        """sng of a query that itself contains sng: two context levels."""
        inner = build.for_in(
            "m2",
            M,
            build.tuple_bag(
                build.proj("m2", 0),
                build.sng(
                    build.for_in(
                        "m3",
                        M,
                        build.proj("m3", 0),
                        condition=preds.eq(preds.var_path("m2", 1), preds.var_path("m3", 1)),
                    )
                ),
            ),
            condition=preds.eq(preds.var_path("m", 2), preds.var_path("m2", 2)),
        )
        query = build.for_in("m", M, build.tuple_bag(build.proj("m", 0), build.sng(inner)))
        theorem_8_check(query, {"M": paper_movies}, {"M": MOVIE_SCHEMA})

    def test_nested_input_passed_through_sng(self):
        """Combine input shredding and query shredding across two levels."""
        nested = Bag([Bag(["a", "b"]), Bag(["c"])])
        query = build.for_in("x", R, build.tuple_bag(ast.SngVar("x"), ast.Sng(ast.Flatten(R))))
        theorem_8_check(query, {"R": nested}, {"R": NESTED_SCHEMA})

    def test_empty_input(self, related):
        theorem_8_check(related, {"M": Bag()}, {"M": MOVIE_SCHEMA})
