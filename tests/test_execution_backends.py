"""Pluggable execution backends: serial ≡ threads ≡ processes (≡ subinterpreters).

The core property is differential, and stricter than view-level equality:
maintenance with the shard-apply path pinned to any execution backend must
leave the engine in a **bit-identical state** to the serial backend — view
contents, storage reports (bag contents, index state, version stamps,
``deltas_applied``, snapshot freezes) — across every strategy, including
negative deltas and deep (label-addressed) updates.  Backend specifics are
covered directly: spec parsing and resolution, the cost model's
recommendation rules, the sendability gate (NaN poisons a store back to
threads, stickily), the ``REPRO_NO_BUILDER`` hatch forcing the in-process
path, shard export/adopt round-trips, and the planner's small-relation
single-shard default.
"""

import json

import pytest

from repro.bag.bag import Bag
from repro.bag.builder import forced_full_copy
from repro.bag.codec import UnsendableValueError, encode_pairs
from repro.engine import Engine
from repro.engine.scheduler import (
    EXECUTION_BACKENDS,
    PROCESS_DELTA_THRESHOLD,
    ProcessExecutionBackend,
    availability_fallback,
    backend_availability,
    create_execution_backend,
    forced_backend,
    parse_backend_spec,
    recommend_backend,
    resolve_backend_spec,
)
from repro.engine.workunits import fold_pairs, fold_shard_unit, index_triples
from repro.ivm import Update
from repro.nrc import ast
from repro.nrc import builders as build
from repro.nrc.types import BASE, bag_of
from repro.shredding.shred_database import input_dict_name
from repro.storage import RelationStore, forced_shards
from repro.storage.shards import SMALL_RELATION_SHARD_THRESHOLD
from repro.workloads import (
    MOVIE_SCHEMA,
    bag_of_bags_engine,
    generate_movies,
    genre_selfjoin_query,
    movie_update_stream,
    movies_engine,
    nested_update_stream,
)

STRATEGIES = ("naive", "classic", "recursive", "nested")

_AVAILABILITY = backend_availability()
NON_SERIAL_SPECS = ["threads:2"]
if _AVAILABILITY["processes"]["available"]:
    NON_SERIAL_SPECS.append("processes:2")
if _AVAILABILITY["subinterpreters"]["available"]:
    NON_SERIAL_SPECS.append("subinterpreters:2")


# --------------------------------------------------------------------------- #
# Differential: every backend leaves the engine bit-identical to serial
# --------------------------------------------------------------------------- #
def _final_state(spec, runner):
    """Run a workload with the shard-apply path pinned to ``spec``; return
    the view results and the full storage report (minus the execution
    section, the one part that legitimately differs between backends)."""
    with forced_shards(4), forced_backend(spec):
        engine, results = runner()
        try:
            report = engine.storage_report()
            report.pop("execution", None)
        finally:
            engine.close()
        return results, json.dumps(report, sort_keys=True, default=repr)


def _strategy_runner(strategy):
    """Genre self-join under a mixed insert/delete stream (negative deltas)."""

    def run():
        movies = generate_movies(120, seed=11)
        engine = movies_engine(movies, expected_update_size=6)
        view = engine.view("v", genre_selfjoin_query(), strategy=strategy)
        engine.apply_stream(
            movie_update_stream(4, 6, existing=movies, deletion_ratio=0.4, seed=17)
        )
        return engine, (view.result(),)

    return run


def _deep_update_runner():
    """Nested strategy with deep (label-addressed) updates plus relation deltas."""

    def run():
        engine = bag_of_bags_engine(15, 3, seed=47)
        relation = ast.Relation("R", bag_of(bag_of(BASE)))
        view = engine.view(
            "v", build.for_in("x", relation, ast.SngVar("x")), strategy="nested"
        )
        dict_name = input_dict_name("R", ())
        dictionary = engine.database.shredded_environment().dictionaries[dict_name]
        labels = sorted(dictionary.support(), key=lambda label: label.render())[:2]
        engine.apply(
            Update(
                deep={
                    dict_name: {
                        label: Bag([f"deep-{i}"]) for i, label in enumerate(labels)
                    }
                }
            )
        )
        engine.apply_stream(nested_update_stream("R", 2, 1, 3, seed=53))
        return engine, (view.result(),)

    return run


class TestBackendEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_every_backend_matches_serial(self, strategy):
        runner = _strategy_runner(strategy)
        serial_results, serial_report = _final_state("serial", runner)
        for spec in NON_SERIAL_SPECS:
            results, report = _final_state(spec, runner)
            assert results == serial_results, f"{spec} diverged on view results"
            assert report == serial_report, f"{spec} diverged on storage report"

    def test_deep_updates_match_serial(self):
        runner = _deep_update_runner()
        serial_results, serial_report = _final_state("serial", runner)
        for spec in NON_SERIAL_SPECS:
            results, report = _final_state(spec, runner)
            assert results == serial_results, f"{spec} diverged on view results"
            assert report == serial_report, f"{spec} diverged on storage report"

    @pytest.mark.skipif(
        not _AVAILABILITY["processes"]["available"],
        reason=str(_AVAILABILITY["processes"]["reason"]),
    )
    def test_offload_sized_deltas_really_use_the_process_backend(self):
        batch = max(150, PROCESS_DELTA_THRESHOLD + 8)
        with forced_shards(4), forced_backend("processes:2"):
            movies = generate_movies(600, seed=97)
            engine = movies_engine(movies, expected_update_size=batch)
            query = build.for_in("x", ast.Relation("M", MOVIE_SCHEMA), ast.SngVar("x"))
            view = engine.view("catalog", query, strategy="classic")
            try:
                engine.apply_stream(
                    movie_update_stream(
                        3, batch, existing=movies, deletion_ratio=0.25, seed=101
                    )
                )
                execution = engine.database.execution_report()
                assert execution["applies"].get("processes", 0) > 0
                assert view.result().cardinality() > 0
            finally:
                engine.close()


# --------------------------------------------------------------------------- #
# Spec parsing, resolution and the cost model
# --------------------------------------------------------------------------- #
class TestBackendSpecs:
    def test_parse_backend_spec(self):
        assert parse_backend_spec("serial") == ("serial", None)
        assert parse_backend_spec("processes:4") == ("processes", 4)
        assert parse_backend_spec(" threads : 2 ") == ("threads", 2)

    @pytest.mark.parametrize("bad", ["bogus", "processes:x", "processes:0"])
    def test_parse_backend_spec_rejects(self, bad):
        with pytest.raises(ValueError):
            parse_backend_spec(bad)

    def test_resolution_order_override_env_auto(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        assert resolve_backend_spec(None) == ("auto", None)
        monkeypatch.setenv("REPRO_BACKEND", "threads:3")
        assert resolve_backend_spec(None) == ("threads", 3)
        assert resolve_backend_spec("processes:2") == ("processes", 2)

    def test_forced_backend_pins_and_validates(self):
        with forced_backend("threads:2"):
            assert resolve_backend_spec(None) == ("threads", 2)
        with pytest.raises(ValueError):
            with forced_backend("bogus"):
                pass  # pragma: no cover - must raise before entering

    def test_engine_rejects_bad_spec_eagerly(self):
        with pytest.raises(ValueError):
            Engine(backend="not-a-backend")

    def test_availability_always_has_serial_and_threads(self):
        availability = backend_availability()
        assert set(availability) == set(EXECUTION_BACKENDS)
        assert availability["serial"]["available"]
        assert availability["threads"]["available"]
        for name in EXECUTION_BACKENDS:
            effective, _ = availability_fallback(name)
            assert availability[effective]["available"]

    def test_recommendation_rules(self):
        # Nothing to parallelize: serial.
        assert recommend_backend(10_000, 1, 4) == "serial"
        assert recommend_backend(10_000, 8, 1) == "serial"
        # Small deltas on multi-shard stores: threads (no IPC worth paying).
        assert recommend_backend(PROCESS_DELTA_THRESHOLD - 1, 8, 4) == "threads"
        # Offload-sized deltas: processes where fork exists, threads otherwise.
        recommended = recommend_backend(PROCESS_DELTA_THRESHOLD, 8, 4)
        if _AVAILABILITY["processes"]["available"]:
            assert recommended == "processes"
        else:
            assert recommended == "threads"

    def test_explain_reports_backend(self):
        with forced_shards(4):
            engine = movies_engine(generate_movies(60, seed=7), expected_update_size=2)
            try:
                view = engine.view("v", genre_selfjoin_query(), strategy="classic")
                plan = engine.explain("v")
                assert plan.backend == engine.database.execution_plan(2)
                assert "backend" in plan.to_dict()
                assert "backend" in plan.render()
                assert view.result() is not None
            finally:
                engine.close()


# --------------------------------------------------------------------------- #
# Sendability gate: what poisons a process backend back to threads
# --------------------------------------------------------------------------- #
@pytest.mark.skipif(
    not _AVAILABILITY["processes"]["available"],
    reason=str(_AVAILABILITY["processes"]["reason"]),
)
class TestProcessFallbacks:
    def _stores(self, rows):
        sharded = RelationStore("R", Bag(rows), shards=4)
        serial = RelationStore("R", Bag(rows), shards=4)
        return sharded, serial

    def test_nan_delta_poisons_store_to_threads_stickily(self):
        rows = [("a", 1), ("b", 2), ("c", 3)]
        sharded, serial = self._stores(rows)
        backend = ProcessExecutionBackend(2)
        try:
            nan_delta = Bag([("a", float("nan"))])
            assert backend.apply_delta(sharded, nan_delta) == "threads"
            serial.apply_delta(nan_delta)
            assert sharded.bag == serial.bag
            # Sticky: even a clean follow-up delta stays off the wire.
            clean = Bag([("d", 4)])
            assert backend.apply_delta(sharded, clean) == "threads"
            serial.apply_delta(clean)
            assert sharded.bag == serial.bag
            assert backend.describe()["store_fallbacks"]
        finally:
            backend.shutdown()

    def test_no_builder_hatch_forces_in_process_apply(self):
        sharded, serial = self._stores([("a", 1), ("b", 2)])
        backend = ProcessExecutionBackend(2)
        try:
            with forced_full_copy(True):
                delta = Bag([("c", 3)])
                assert backend.apply_delta(sharded, delta) == "threads"
            serial.apply_delta(Bag([("c", 3)]))
            assert sharded.bag == serial.bag
        finally:
            backend.shutdown()

    def test_clean_delta_goes_over_the_wire_and_matches_serial(self):
        rows = [(f"k{i}", i) for i in range(40)]
        sharded, serial = self._stores(rows)
        sharded.ensure_index(((0,),))
        serial.ensure_index(((0,),))
        backend = ProcessExecutionBackend(2)
        try:
            delta = Bag(
                [(f"k{i}", i + 100) for i in range(20)]
                + [((f"k{i}", i), -1) for i in range(5)]
            )
            assert backend.apply_delta(sharded, delta) == "processes"
            serial.apply_delta(delta)
            assert sharded.bag == serial.bag
            assert sharded.describe() == serial.describe()
        finally:
            backend.shutdown()

    def test_create_execution_backend_rejects_unknown(self):
        with pytest.raises(ValueError):
            create_execution_backend("bogus", 2)


# --------------------------------------------------------------------------- #
# Work units and shard export/adopt: the parent-side fold protocol
# --------------------------------------------------------------------------- #
class TestShardExportAdopt:
    def test_export_fold_adopt_matches_serial_apply(self):
        rows = [(f"k{i}", i % 7) for i in range(64)]
        offloaded = RelationStore("R", Bag(rows), shards=4)
        serial = RelationStore("R", Bag(rows), shards=4)
        offloaded.ensure_index(((1,),))
        serial.ensure_index(((1,),))
        delta = Bag([(f"k{i}", (i + 1) % 7) for i in range(24)] + [((f"k{1}", 1 % 7), -1)])

        groups = offloaded.partition_delta(delta)
        version = offloaded.begin_delta()
        for position, pairs in groups.items():
            export = offloaded.export_shard(position)
            data = export["data"]
            summaries = fold_shard_unit(
                data, pairs, offloaded.shard_unit_paths(position)
            )
            offloaded.adopt_shard(position, data, summaries, version=version)
        offloaded.finish_delta()
        serial.apply_delta(delta)

        assert offloaded.bag == serial.bag
        assert offloaded.describe() == serial.describe()
        probe = ("k3", (3 + 1) % 7)
        assert offloaded.bag.multiplicity(probe) == serial.bag.multiplicity(probe)

    def test_fold_pairs_cancels_at_zero(self):
        data = {"a": 2, "b": 1}
        fold_pairs(data, [("a", -2), ("b", 1), ("c", 3), ("c", -3)])
        assert data == {"b": 2}

    def test_index_triples_abandons_unhashable_slices(self):
        healthy = index_triples([(("a", 1), 1)], ((0,),))
        assert healthy == [(("a",), ("a", 1), 1)]
        poisoned = index_triples([(([1, 2], 1), 1)], ((0,),))
        assert poisoned is None

    def test_codec_rejects_nan_pairs(self):
        with pytest.raises(UnsendableValueError):
            encode_pairs([(float("nan"), 1)])


# --------------------------------------------------------------------------- #
# Planner default: small relations get one shard
# --------------------------------------------------------------------------- #
class TestSmallRelationDefault:
    def _shard_counts(self, engine):
        return {
            entry["relation"]: entry["shards"]
            for entry in engine.storage_report()["nested"]["stores"]
        }

    def test_small_relations_default_to_one_shard(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        small_rows = generate_movies(SMALL_RELATION_SHARD_THRESHOLD - 1, seed=7)
        large_rows = generate_movies(SMALL_RELATION_SHARD_THRESHOLD + 40, seed=7)
        engine = Engine()
        try:
            engine.dataset("S", MOVIE_SCHEMA, small_rows)
            engine.dataset("L", MOVIE_SCHEMA, large_rows)
            counts = self._shard_counts(engine)
            assert counts["S"] == 1
            assert counts["L"] > 1
        finally:
            engine.close()

    def test_pinned_shards_override_the_small_relation_default(self):
        with forced_shards(4):
            engine = Engine()
            try:
                engine.dataset("S", MOVIE_SCHEMA, generate_movies(50, seed=7))
                assert self._shard_counts(engine)["S"] == 4
            finally:
                engine.close()

    def test_small_default_preserves_maintenance(self, monkeypatch):
        monkeypatch.delenv("REPRO_SHARDS", raising=False)
        movies = generate_movies(80, seed=11)
        engine = movies_engine(movies, expected_update_size=4)
        try:
            view = engine.view("v", genre_selfjoin_query(), strategy="classic")
            engine.apply_stream(
                movie_update_stream(3, 4, existing=movies, deletion_ratio=0.3, seed=13)
            )
            with forced_shards(1):
                reference = movies_engine(movies, expected_update_size=4)
                try:
                    ref_view = reference.view(
                        "v", genre_selfjoin_query(), strategy="classic"
                    )
                    reference.apply_stream(
                        movie_update_stream(
                            3, 4, existing=movies, deletion_ratio=0.3, seed=13
                        )
                    )
                    assert view.result() == ref_view.result()
                finally:
                    reference.close()
        finally:
            engine.close()


# --------------------------------------------------------------------------- #
# Stats surfacing: the serve layer reports backend and per-backend applies
# --------------------------------------------------------------------------- #
class TestExecutionReporting:
    def test_execution_report_counts_applies_by_effective_backend(self):
        with forced_shards(4), forced_backend("threads:2"):
            movies = generate_movies(60, seed=7)
            engine = movies_engine(movies, expected_update_size=4)
            try:
                engine.view("v", genre_selfjoin_query(), strategy="classic")
                engine.apply_stream(
                    movie_update_stream(2, 4, existing=movies, seed=13)
                )
                execution = engine.database.execution_report()
                assert execution["requested"] == "threads"
                assert execution["applies"].get("threads", 0) > 0
                assert set(execution["availability"]) == set(EXECUTION_BACKENDS)
            finally:
                engine.close()

    def test_storage_report_includes_execution_section(self):
        engine = Engine()
        try:
            assert "execution" in engine.storage_report()
        finally:
            engine.close()
