"""Transient builders, copy-on-write stores and the full-copy escape hatch.

The contract under test: every :class:`~repro.bag.builder.BagBuilder`
application must be observationally identical to the immutable
``Bag.union`` chain it replaces — including negative multiplicities,
cancellation to the empty bag, interleaved freezes (copy-on-write must never
mutate an escaped snapshot), NaN join keys poisoning persistent indexes
exactly as before, and whole maintained views across all four strategies.
"""

import math
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bag import (
    Bag,
    BagBuilder,
    EMPTY_BAG,
    REPRO_NO_BUILDER,
    forced_full_copy,
    intern_key,
    key_interner_stats,
    transients_enabled,
)
from repro.dictionaries import MaterializedDict
from repro.labels import Label
from repro.storage import DictionaryStore, RelationStore, StorageManager
from repro.workloads import (
    generate_movies,
    genre_selfjoin_query,
    movie_update_stream,
    movies_engine,
)

elements = st.one_of(st.integers(-5, 5), st.text(alphabet="abc", max_size=2))
multiplicities = st.integers(min_value=-4, max_value=4)
pair_lists = st.lists(st.tuples(elements, multiplicities), max_size=10)
bags = st.dictionaries(elements, multiplicities, max_size=6).map(Bag.from_mapping)


# --------------------------------------------------------------------------- #
# Builder ≡ immutable union chains
# --------------------------------------------------------------------------- #
class TestBuilderEquivalence:
    @given(bags, st.lists(bags, max_size=6))
    @settings(max_examples=80, deadline=None)
    def test_apply_bag_chain_equals_union_chain(self, initial, deltas):
        builder = BagBuilder.from_bag(initial)
        immutable = initial
        for delta in deltas:
            builder.apply_bag(delta)
            immutable = immutable.union(delta)
        assert builder.freeze() == immutable

    @given(st.lists(pair_lists, max_size=5))
    @settings(max_examples=80, deadline=None)
    def test_apply_pairs_equals_from_pairs(self, batches):
        builder = BagBuilder()
        flattened = []
        for batch in batches:
            builder.apply_pairs(batch)
            flattened.extend(batch)
        assert builder.freeze() == Bag.from_pairs(flattened)

    @given(bags, st.lists(bags, min_size=1, max_size=5))
    @settings(max_examples=60, deadline=None)
    def test_interleaved_freezes_are_never_mutated(self, initial, deltas):
        """Copy-on-write: a snapshot taken mid-stream must keep its value."""
        builder = BagBuilder.from_bag(initial)
        snapshots = []
        expected = [initial]
        running = initial
        for delta in deltas:
            snapshots.append(builder.freeze())
            builder.apply_bag(delta)
            running = running.union(delta)
            expected.append(running)
        snapshots.append(builder.freeze())
        for snapshot, value in zip(snapshots, expected):
            assert snapshot == value

    @given(bags)
    @settings(max_examples=40, deadline=None)
    def test_cancellation_to_empty(self, bag):
        builder = BagBuilder.from_bag(bag)
        builder.apply_bag(bag.negate())
        assert builder.is_empty()
        assert builder.freeze() == EMPTY_BAG

    def test_freeze_identity_is_stable_until_mutation(self):
        builder = BagBuilder.from_bag(Bag(["a"]))
        first = builder.freeze()
        assert builder.freeze() is first
        builder.add("b")
        second = builder.freeze()
        assert second is not first
        assert first == Bag(["a"])
        assert second == Bag(["a", "b"])

    def test_dropped_snapshot_allows_in_place_mutation(self):
        builder = BagBuilder()
        builder.apply_pairs([("a", 1)])
        before = builder.freezes
        builder.freeze()  # result dropped immediately
        data_id = id(builder._data)
        builder.add("b")
        assert id(builder._data) == data_id  # no copy happened
        assert builder.freezes == before + 1

    def test_empty_bag_constant_is_protected(self):
        builder = BagBuilder.from_bag(EMPTY_BAG)
        builder.add("x")
        assert EMPTY_BAG.is_empty()
        assert builder.freeze() == Bag(["x"])

    def test_scale_and_add_validation(self):
        builder = BagBuilder()
        builder.apply_bag(Bag(["a", "a"]), scale=-2)
        assert builder.freeze() == Bag.from_mapping({"a": -4})
        with pytest.raises(TypeError):
            builder.add("a", multiplicity="2")
        with pytest.raises(TypeError):
            builder.apply_bag({"a": 1})
        with pytest.raises(TypeError):
            builder.apply_bag(Bag(["a"]), scale=2.0)

    def test_live_iterator_over_snapshot_survives_mutation(self):
        """An iterator keeps only the snapshot's *dict* alive, not the Bag;
        copy-on-write must detect that and not mutate under it."""
        builder = BagBuilder.from_bag(Bag(["a", "b", "c"]))
        iterator = builder.freeze().elements()
        first = next(iterator)
        builder.apply_pairs([("d", 1)])
        remaining = list(iterator)  # must not raise or see 'd'
        assert sorted([first] + remaining) == ["a", "b", "c"]
        assert builder.freeze() == Bag(["a", "b", "c", "d"])


# --------------------------------------------------------------------------- #
# The REPRO_NO_BUILDER escape hatch
# --------------------------------------------------------------------------- #
class TestFullCopyHatch:
    def test_hatch_scopes_and_restores(self):
        assert transients_enabled()
        with forced_full_copy():
            assert not transients_enabled()
        assert transients_enabled()
        os.environ[REPRO_NO_BUILDER] = "preexisting"
        try:
            with forced_full_copy(False):
                assert transients_enabled()
            assert os.environ[REPRO_NO_BUILDER] == "preexisting"
        finally:
            os.environ.pop(REPRO_NO_BUILDER, None)

    @given(bags, st.lists(bags, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_full_copy_leg_is_equivalent(self, initial, deltas):
        transient = BagBuilder.from_bag(initial)
        for delta in deltas:
            transient.apply_bag(delta)
        with forced_full_copy():
            full = BagBuilder.from_bag(initial)
            for delta in deltas:
                full.apply_bag(delta)
        assert transient.freeze() == full.freeze()


# --------------------------------------------------------------------------- #
# Copy-on-write relation stores: versions, snapshots, index freshness
# --------------------------------------------------------------------------- #
class TestRelationStoreCOW:
    def test_version_bumps_and_lazy_freeze_counting(self):
        store = RelationStore("R", Bag([("a", 1)]))
        assert store.version == 0
        store.apply_delta(Bag([("b", 2)]))
        store.apply_delta(Bag([("c", 3)]))
        assert store.version == 2
        assert store.snapshot_freezes == 0  # nobody asked for a snapshot yet
        assert store.bag == Bag([("a", 1), ("b", 2), ("c", 3)])
        assert store.snapshot_freezes == 1
        report = store.describe()
        assert report["version"] == 2
        assert report["snapshot_freezes"] == 1

    def test_escaped_snapshot_survives_later_deltas(self):
        store = RelationStore("R", Bag([("a", 1)]))
        held = store.bag
        store.apply_delta(Bag([("b", 2)]))
        assert held == Bag([("a", 1)])  # copy-on-write protected it
        assert store.bag == Bag([("a", 1), ("b", 2)])

    def test_empty_delta_is_a_noop(self):
        store = RelationStore("R", Bag([("a", 1)]))
        snapshot = store.bag
        store.apply_delta(EMPTY_BAG)
        assert store.version == 0
        assert store.bag is snapshot

    def test_provider_requires_current_version_and_snapshot(self):
        manager = StorageManager()
        manager.ensure("R", Bag([("a", 1)]))
        index = manager.ensure_index("R", ((1,),))
        provider = manager.provider()
        snapshot = manager.bag("R")
        assert provider.probe("R", ((1,),), snapshot) is index
        # After a delta the old snapshot no longer corresponds.
        manager.apply_delta("R", Bag([("b", 2)]))
        assert provider.probe("R", ((1,),), snapshot) is None
        # The new snapshot does, and the index was maintained from the delta.
        fresh = manager.bag("R")
        assert provider.probe("R", ((1,),), fresh) is index
        assert index.version == manager.get("R").version
        assert dict(index.get((2,))) == {("b", 2): 1}

    def test_stale_index_version_is_not_served(self):
        manager = StorageManager()
        manager.ensure("R", Bag([("a", 1)]))
        index = manager.ensure_index("R", ((1,),))
        provider = manager.provider()
        snapshot = manager.bag("R")
        index.version -= 1  # simulate an index that missed a maintenance pass
        assert provider.probe("R", ((1,),), snapshot) is None

    def test_nan_delta_poisons_index_exactly_as_before(self):
        store = RelationStore("R", Bag([("a", 1.0)]))
        index = store.ensure_index(((1,),))
        assert not index.poisoned
        store.apply_delta(Bag([("bad", math.nan)]))
        assert index.poisoned
        # The bag itself is maintained regardless.
        assert store.bag.multiplicity(("bad", math.nan)) == 1
        # Deleting the offender and vacuuming restores the index.
        store.apply_delta(Bag.from_pairs([(("bad", math.nan), -1)]))
        assert store.vacuum() == 1
        assert not index.poisoned
        assert index.version == store.version


# --------------------------------------------------------------------------- #
# Dictionary store: in-place pointwise merges with COW views
# --------------------------------------------------------------------------- #
class TestDictionaryStoreCOW:
    def test_pointwise_merge_and_support(self):
        store = DictionaryStore()
        ell, kay = Label("D", ("l",)), Label("D", ("k",))
        store.set("R__D", MaterializedDict({ell: Bag(["a"])}))
        store.apply_delta("R__D", MaterializedDict({ell: Bag(["b"]), kay: Bag(["c"])}))
        merged = store.get("R__D")
        assert merged.lookup(ell) == Bag(["a", "b"])
        assert merged.lookup(kay) == Bag(["c"])
        # A label whose bag cancels to empty stays in the support.
        store.apply_delta("R__D", MaterializedDict({kay: Bag(["c"]).negate()}))
        assert store.get("R__D").defines(kay)
        assert store.get("R__D").lookup(kay) == EMPTY_BAG

    def test_escaped_view_survives_later_merges(self):
        store = DictionaryStore()
        ell = Label("D", ("l",))
        store.set("R__D", MaterializedDict({ell: Bag(["a"])}))
        held = store.get("R__D")
        store.apply_delta("R__D", MaterializedDict({ell: Bag(["b"])}))
        assert held.lookup(ell) == Bag(["a"])
        assert store.get("R__D").lookup(ell) == Bag(["a", "b"])

    def test_live_iterator_over_view_survives_merges(self):
        store = DictionaryStore()
        ell, kay = Label("D", ("l",)), Label("D", ("k",))
        store.set("R__D", MaterializedDict({ell: Bag(["a"]), kay: Bag(["b"])}))
        iterator = iter(store.get("R__D").items())
        first_label, _ = next(iterator)
        store.apply_delta("R__D", MaterializedDict({Label("D", ("m",)): Bag(["c"])}))
        seen = {first_label} | {label for label, _ in iterator}  # must not raise
        assert seen == {ell, kay}


# --------------------------------------------------------------------------- #
# Key interning
# --------------------------------------------------------------------------- #
class TestKeyInterning:
    def test_interning_is_semantically_invisible_and_canonical(self):
        first = intern_key(("Drama", 7))
        second = intern_key(("Drama", 7))
        assert first == ("Drama", 7)
        assert second is first
        stats = key_interner_stats()
        assert stats["hits"] >= 1 and stats["misses"] >= 1

    def test_label_hash_is_cached_and_stable(self):
        label = Label("D", ("g1", Label("E", ())))
        assert hash(label) == hash(Label("D", ("g1", Label("E", ()))))
        assert label == Label("D", ("g1", Label("E", ())))
        assert label != Label("D", ("g2",))


# --------------------------------------------------------------------------- #
# Builder ≡ full-copy across whole maintained views (all four strategies)
# --------------------------------------------------------------------------- #
def _maintain(strategy: str, size: int, seed: int, full_copy: bool):
    with forced_full_copy(full_copy):
        movies = generate_movies(size, seed=seed)
        engine = movies_engine(movies, expected_update_size=2)
        view = engine.view("v", genre_selfjoin_query(), strategy=strategy)
        engine.apply_stream(
            movie_update_stream(4, 2, existing=movies, deletion_ratio=0.4, seed=seed + 1)
        )
        return view.result(), engine.relation("M")


@pytest.mark.parametrize("strategy", ["naive", "classic", "recursive", "nested"])
@given(seed=st.integers(min_value=0, max_value=50))
@settings(max_examples=8, deadline=None)
def test_builder_equals_full_copy_across_strategies(strategy, seed):
    transient_result, transient_relation = _maintain(strategy, 30, seed, False)
    full_result, full_relation = _maintain(strategy, 30, seed, True)
    assert transient_result == full_result
    assert transient_relation == full_relation
