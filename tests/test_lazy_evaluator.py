"""Tests for the lazy evaluation strategy of Lemma 3."""

from repro.bag import Bag
from repro.instrument import OpCounter
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.lazy import (
    LazyBag,
    evaluate_lazy,
    evaluate_lazy_expanded,
    expand_bag,
)
from repro.nrc.types import BASE, bag_of, tuple_of
from repro.workloads import MOVIE_SCHEMA, PAPER_MOVIES, related_query

M = ast.Relation("M", MOVIE_SCHEMA)


class TestLazyEquivalence:
    def test_related_query_matches_strict_evaluation(self, paper_movies, related):
        env = Environment(relations={"M": paper_movies})
        assert evaluate_lazy_expanded(related, env) == evaluate_bag(related, env)

    def test_flat_query_is_unaffected(self, paper_movies):
        query = build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x")
        env = Environment(relations={"M": paper_movies})
        assert evaluate_lazy_expanded(query, env) == evaluate_bag(query, env)

    def test_doubly_nested_query(self, paper_movies):
        inner = build.for_in("m2", M, build.sng(build.for_in("m3", M, build.proj("m3", 0))))
        query = build.for_in("m", M, build.sng(inner))
        env = Environment(relations={"M": paper_movies})
        assert evaluate_lazy_expanded(query, env) == evaluate_bag(query, env)


class TestLaziness:
    def test_inner_bags_are_suspended(self, paper_movies, related):
        env = Environment(relations={"M": paper_movies})
        lazy_result = evaluate_lazy(related, env)
        suspended = [
            component
            for element in lazy_result.elements()
            for component in element
            if isinstance(component, LazyBag)
        ]
        assert len(suspended) == 3
        assert not any(lazy.is_forced for lazy in suspended)

    def test_forcing_is_memoized(self, paper_movies):
        env = Environment(relations={"M": paper_movies})
        lazy = LazyBag(ast.For("m", M, ast.SngProj("m", (0,))), env, None)
        first = lazy.force()
        assert lazy.is_forced
        assert lazy.force() is first

    def test_projected_away_inner_bags_are_never_computed(self, paper_movies, related):
        """The lazy pass pays only for the top-level bag (Lemma 3's point)."""
        env = Environment(relations={"M": paper_movies})
        lazy_counter = OpCounter()
        # Keep only the movie names: the nested relB bags are projected away.
        names_only = ast.For("r", related, ast.SngProj("r", (0,)))
        result = expand_bag(evaluate_lazy(names_only, env, lazy_counter))
        assert result == Bag(["Drive", "Skyfall", "Rush"])

        strict_counter = OpCounter()
        evaluate_bag(names_only, env, strict_counter)
        # Strict evaluation iterates M once per movie to build the inner bags
        # (quadratic); lazy evaluation never does.
        assert lazy_counter.get("for_iterations") < strict_counter.get("for_iterations")
        assert lazy_counter.get("suspensions") == 3

    def test_expand_handles_plain_values(self):
        assert expand_bag(Bag([("a", 1)])) == Bag([("a", 1)])
