"""Tests for cost domains, partial orders and the size function (Section 4.2)."""

import pytest

from repro.bag import Bag
from repro.cost import (
    ATOM_COST,
    AtomCost,
    BagCost,
    TupleCost,
    bottom_cost,
    is_incremental_update,
    less_equal,
    size_of,
    strictly_less,
    sup,
)
from repro.errors import CostModelError
from repro.nrc.types import BASE, LABEL, UNIT, bag_of, tuple_of


class TestCostValues:
    def test_render(self):
        assert ATOM_COST.render() == "1"
        assert BagCost(3, BagCost(2, ATOM_COST)).render() == "3{2{1}}"
        assert BagCost(1, ATOM_COST).render() == "{1}"
        assert TupleCost((ATOM_COST, ATOM_COST)).render() == "⟨1, 1⟩"

    def test_negative_cardinality_rejected(self):
        with pytest.raises(CostModelError):
            BagCost(-1, ATOM_COST)

    def test_bottom_cost_shapes(self):
        assert bottom_cost(BASE) == ATOM_COST
        assert bottom_cost(UNIT) == ATOM_COST
        assert bottom_cost(LABEL) == ATOM_COST
        assert bottom_cost(bag_of(BASE)) == BagCost(0, ATOM_COST)
        assert bottom_cost(tuple_of(BASE, bag_of(BASE))) == TupleCost(
            (ATOM_COST, BagCost(0, ATOM_COST))
        )


class TestOrders:
    def test_base_costs_never_strictly_comparable(self):
        assert not strictly_less(ATOM_COST, ATOM_COST)
        assert less_equal(ATOM_COST, ATOM_COST)

    def test_bag_costs_compare_on_cardinality(self):
        small = BagCost(1, ATOM_COST)
        large = BagCost(5, ATOM_COST)
        assert strictly_less(small, large)
        assert not strictly_less(large, small)
        assert less_equal(small, large)

    def test_nested_bag_costs(self):
        small = BagCost(1, BagCost(2, ATOM_COST))
        large = BagCost(3, BagCost(2, ATOM_COST))
        assert strictly_less(small, large)
        huge_inner = BagCost(2, BagCost(9, ATOM_COST))
        assert not strictly_less(huge_inner, large)

    def test_tuple_costs_compare_componentwise(self):
        left = TupleCost((ATOM_COST, BagCost(1, ATOM_COST)))
        right = TupleCost((ATOM_COST, BagCost(4, ATOM_COST)))
        assert strictly_less(left, right) is False  # first component is Base: never strict
        assert less_equal(left, right)

    def test_mismatched_arities_rejected(self):
        with pytest.raises(CostModelError):
            less_equal(TupleCost((ATOM_COST,)), TupleCost((ATOM_COST, ATOM_COST)))

    def test_sup(self):
        left = BagCost(2, BagCost(5, ATOM_COST))
        right = BagCost(4, BagCost(1, ATOM_COST))
        assert sup(left, right) == BagCost(4, BagCost(5, ATOM_COST))
        assert sup(ATOM_COST, ATOM_COST) == ATOM_COST


class TestSize:
    def test_example_5(self):
        """size of {⟨Comedy,{Carnage}⟩, ⟨Animation,{Up,Shrek,Cars}⟩} is 2{⟨1,3{1}⟩}."""
        value = Bag(
            [
                ("Comedy", Bag(["Carnage"])),
                ("Animation", Bag(["Up", "Shrek", "Cars"])),
            ]
        )
        cost = size_of(value)
        assert cost == BagCost(2, TupleCost((ATOM_COST, BagCost(3, ATOM_COST))))

    def test_intro_example(self):
        """{{a},{b},{c,d}} has size 3{2}."""
        value = Bag([Bag(["a"]), Bag(["b"]), Bag(["c", "d"])])
        assert size_of(value) == BagCost(3, BagCost(2, ATOM_COST))

    def test_size_counts_repetitions(self):
        value = Bag.from_pairs([("a", 3)])
        assert size_of(value) == BagCost(3, ATOM_COST)

    def test_size_of_empty_bag_uses_type_shape(self):
        cost = size_of(Bag(), bag_of(bag_of(BASE)))
        assert cost == BagCost(0, BagCost(0, ATOM_COST))

    def test_size_of_label_is_atomic(self):
        from repro.labels import Label

        assert size_of(Label("ι", ("x",))) == ATOM_COST

    def test_incremental_update_check(self):
        base = Bag([f"x{i}" for i in range(10)])
        small = Bag(["y"])
        assert is_incremental_update(small, base)
        assert not is_incremental_update(base, base)
        assert not is_incremental_update(base, small)
