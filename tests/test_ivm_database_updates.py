"""Tests for the database, update objects and the shredded mirror."""

import pytest

from repro.bag import Bag, EMPTY_BAG
from repro.errors import WorkloadError
from repro.ivm import Database, Update, UpdateStream, deletions, insertions
from repro.labels import Label
from repro.nrc.types import BASE, bag_of, tuple_of
from repro.shredding.shred_database import flat_relation_name, input_dict_name
from repro.workloads import MOVIE_SCHEMA, PAPER_MOVIES

NESTED_SCHEMA = bag_of(bag_of(BASE))


class TestUpdateObjects:
    def test_insertions_and_deletions_helpers(self):
        insert = insertions("M", [("a", "g", "d")])
        assert insert.relations["M"].multiplicity(("a", "g", "d")) == 1
        delete = deletions("M", [("a", "g", "d")])
        assert delete.relations["M"].multiplicity(("a", "g", "d")) == -1

    def test_is_empty_and_total_size(self):
        assert Update().is_empty()
        assert not insertions("M", [("a", "g", "d")]).is_empty()
        update = Update(relations={"M": Bag([("a", "g", "d")])}, deep={"D": {Label("l"): Bag(["x"])}})
        assert update.total_size() == 2
        assert update.touched_relations() == ("M",)

    def test_deep_dict_deltas(self):
        update = Update(deep={"D": {Label("l"): Bag(["x"])}})
        deltas = update.deep_dict_deltas()
        assert deltas["D"].lookup(Label("l")) == Bag(["x"])

    def test_update_stream_merge(self):
        stream = UpdateStream(
            [insertions("M", [("a", "g", "d")]), insertions("M", [("b", "g", "d")])]
        )
        assert len(stream) == 2
        assert stream.total_size() == 2
        merged = stream.merged()
        assert merged.relations["M"].cardinality() == 2

    def test_update_stream_indexing(self):
        first = insertions("M", [("a", "g", "d")])
        stream = UpdateStream([first])
        assert stream[0] is first
        stream.append(insertions("M", [("b", "g", "d")]))
        assert len(list(stream)) == 2

    def test_deep_delta_of_empty_bags_is_empty(self):
        # Regression: pointwise emptiness — a deep delta that adds only
        # empty bags changes nothing and must report empty.
        update = Update(deep={"R__D1": {Label("l"): EMPTY_BAG}})
        assert update.is_empty()
        mixed = Update(deep={"R__D1": {Label("l"): EMPTY_BAG, Label("m"): Bag(["x"])}})
        assert not mixed.is_empty()

    def test_merged_drops_cancelled_relations(self):
        stream = UpdateStream(
            [insertions("M", [("a", "g", "d")]), deletions("M", [("a", "g", "d")])]
        )
        merged = stream.merged()
        assert "M" not in merged.relations
        assert merged.is_empty()

    def test_merged_drops_cancelled_deep_labels(self):
        label, other = Label("l"), Label("m")
        stream = UpdateStream(
            [
                Update(deep={"R__D": {label: Bag(["x"]), other: Bag(["y"])}}),
                Update(deep={"R__D": {label: Bag(["x"]).negate()}}),
            ]
        )
        merged = stream.merged()
        assert label not in merged.deep["R__D"]
        assert merged.deep["R__D"][other] == Bag(["y"])
        # A fully cancelled dictionary disappears altogether.
        cancelling = UpdateStream(
            [
                Update(deep={"R__D": {label: Bag(["x"])}}),
                Update(deep={"R__D": {label: Bag(["x"]).negate()}}),
            ]
        )
        assert cancelling.merged().deep == {}


class TestDatabase:
    def test_register_and_read(self, movie_db, paper_movies):
        assert movie_db.relation("M") == paper_movies
        assert movie_db.relation_names() == ("M",)
        assert movie_db.schema("M") == MOVIE_SCHEMA

    def test_double_registration_rejected(self, movie_db):
        with pytest.raises(WorkloadError):
            movie_db.register("M", MOVIE_SCHEMA)

    def test_update_to_unknown_relation_rejected(self, movie_db):
        with pytest.raises(WorkloadError):
            movie_db.apply_update(insertions("Unknown", [("a",)]))

    def test_empty_update_to_unknown_relation_still_rejected(self, movie_db):
        # The no-op short-circuit must not mask a typo'd relation name.
        with pytest.raises(WorkloadError):
            movie_db.apply_update(Update(relations={"Mtypo": EMPTY_BAG}))

    def test_apply_update_mutates_nested_relation(self, movie_db, paper_update):
        movie_db.apply_update(Update(relations={"M": paper_update}))
        assert movie_db.relation("M").multiplicity(("Jarhead", "Drama", "Mendes")) == 1

    def test_apply_deletion(self, movie_db):
        movie_db.apply_update(deletions("M", [("Drive", "Drama", "Refn")]))
        assert ("Drive", "Drama", "Refn") not in movie_db.relation("M")

    def test_shredded_mirror_for_flat_relation(self, movie_db, paper_movies):
        env = movie_db.shredded_environment()
        assert env.relations[flat_relation_name("M")] == paper_movies

    def test_shredded_mirror_for_nested_relation(self):
        database = Database()
        database.register("R", NESTED_SCHEMA, Bag([Bag(["a", "b"]), Bag(["c"])]))
        env = database.shredded_environment()
        flat = env.relations[flat_relation_name("R")]
        assert flat.cardinality() == 2
        assert all(isinstance(element, Label) for element in flat.elements())
        dictionary = env.dictionaries[input_dict_name("R", ())]
        assert len(dictionary.support()) == 2

    def test_shred_update_creates_delta_symbols(self, movie_db, paper_update):
        delta = movie_db.shred_update(Update(relations={"M": paper_update}))
        assert delta.bags[flat_relation_name("M")] == paper_update
        assert delta.source_names() == (flat_relation_name("M"),)
        assert (flat_relation_name("M"), 1) in delta.as_delta_symbols()

    def test_shred_update_of_nested_insert_defines_new_labels(self):
        database = Database()
        database.register("R", NESTED_SCHEMA, Bag([Bag(["a"])]))
        delta = database.shred_update(Update(relations={"R": Bag([Bag(["new"])])}))
        assert input_dict_name("R", ()) in delta.dictionaries
        assert len(delta.dictionaries[input_dict_name("R", ())]) == 1

    def test_shredded_mirror_is_updated_incrementally(self):
        database = Database()
        database.register("R", NESTED_SCHEMA, Bag([Bag(["a"])]))
        database.apply_update(Update(relations={"R": Bag([Bag(["b", "c"])])}))
        env = database.shredded_environment()
        assert env.relations[flat_relation_name("R")].cardinality() == 2
        assert len(env.dictionaries[input_dict_name("R", ())].support()) == 2

    def test_views_are_notified_before_mutation(self, movie_db, paper_movies, paper_update):
        observed = {}

        class Probe:
            def on_update(self, update, shredded_delta):
                observed["relation_at_notification"] = movie_db.relation("M")

        movie_db.register_view(Probe())
        movie_db.apply_update(Update(relations={"M": paper_update}))
        assert observed["relation_at_notification"] == paper_movies

    def test_deep_update_refreshes_nested_relation(self):
        database = Database()
        database.register("R", NESTED_SCHEMA, Bag([Bag(["a"]), Bag(["b"])]))
        dict_name = input_dict_name("R", ())
        label = sorted(
            database.shredded_environment().dictionaries[dict_name].support(),
            key=lambda l: l.render(),
        )[0]
        database.apply_update(Update(deep={dict_name: {label: Bag(["z"])}}))
        updated = database.relation("R")
        assert any("z" in inner.elements() for inner in updated.elements() if isinstance(inner, Bag))

    def test_noop_update_short_circuits_view_notification(self, movie_db):
        calls = []

        class Probe:
            def on_update(self, update, shredded_delta):
                calls.append(update)

        movie_db.register_view(Probe())
        movie_db.apply_update(Update())
        movie_db.apply_update(Update(relations={"M": EMPTY_BAG}))
        movie_db.apply_update(Update(deep={"whatever__D": {Label("l"): EMPTY_BAG}}))
        assert calls == []
        movie_db.apply_update(insertions("M", [("a", "g", "d")]))
        assert len(calls) == 1

    def test_deep_update_of_relation_named_with_dunder_d(self):
        # Regression: the relation name itself contains the "__D" separator;
        # parsing the dictionary name would mis-derive the owner ("user")
        # and silently skip the nested refresh.
        database = Database()
        database.register("user__Data", NESTED_SCHEMA, Bag([Bag(["a"]), Bag(["b"])]))
        dict_name = input_dict_name("user__Data", ())
        label = sorted(
            database.shredded_environment().dictionaries[dict_name].support(),
            key=lambda l: l.render(),
        )[0]
        database.apply_update(Update(deep={dict_name: {label: Bag(["z"])}}))
        updated = database.relation("user__Data")
        assert any(
            "z" in inner.elements() for inner in updated.elements() if isinstance(inner, Bag)
        )

    def test_shredded_source_names(self, movie_db):
        assert movie_db.shredded_source_names("M") == (flat_relation_name("M"),)
        database = Database()
        database.register("R", NESTED_SCHEMA, EMPTY_BAG)
        assert database.shredded_source_names("R") == (
            flat_relation_name("R"),
            input_dict_name("R", ()),
        )


class TestFlatDeltaValidation:
    def test_malformed_flat_delta_is_rejected(self):
        """The shredder bypass for flat relations must keep the shredder's
        shape validation: a wrong-arity tuple fails at apply time, not as a
        confusing downstream projection error."""
        from repro.errors import ShreddingError

        database = Database()
        database.register("M", MOVIE_SCHEMA, Bag(PAPER_MOVIES))
        with pytest.raises(ShreddingError):
            database.apply_update(Update(relations={"M": Bag([("bad",)])}))
        with pytest.raises(ShreddingError):
            database.apply_update(Update(relations={"M": Bag(["not-a-tuple"])}))
        # Well-formed deltas still pass through without the shredder.
        database.apply_update(Update(relations={"M": Bag([("a", "g", "d")])}))
        assert database.relation("M").multiplicity(("a", "g", "d")) == 1
