"""Tests for the naive, classic and recursive IVM views."""

import pytest

from repro.bag import Bag
from repro.errors import NotInFragmentError
from repro.ivm import (
    ClassicIVMView,
    Database,
    NaiveView,
    RecursiveIVMView,
    Update,
    deletions,
    insertions,
    partially_evaluate,
)
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.analysis import referenced_deltas, referenced_relations
from repro.nrc.evaluator import evaluate_bag
from repro.nrc.pretty import render
from repro.nrc.types import BASE, bag_of, tuple_of
from repro.workloads import MOVIE_SCHEMA, generate_movies, movie_update_stream

MOVIE = tuple_of(BASE, BASE, BASE)
M = ast.Relation("M", MOVIE_SCHEMA)
NESTED_SCHEMA = bag_of(bag_of(BASE))


def drama_filter():
    return build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x")


class TestNaiveView:
    def test_materializes_on_construction(self, movie_db):
        view = NaiveView(drama_filter(), movie_db)
        assert view.result() == Bag([("Drive", "Drama", "Refn")])

    def test_tracks_updates(self, movie_db, paper_update):
        view = NaiveView(drama_filter(), movie_db)
        movie_db.apply_update(Update(relations={"M": paper_update}))
        assert view.result().cardinality() == 2
        assert view.stats.updates_applied == 1

    def test_matches_direct_recomputation(self, movie_db, paper_update):
        view = NaiveView(drama_filter(), movie_db)
        movie_db.apply_update(Update(relations={"M": paper_update}))
        assert view.result() == evaluate_bag(drama_filter(), movie_db.environment())


class TestClassicIVMView:
    def test_matches_naive_over_a_stream(self, movie_db):
        naive = NaiveView(drama_filter(), movie_db)
        classic = ClassicIVMView(drama_filter(), movie_db)
        for update in movie_update_stream(4, 2, seed=1):
            movie_db.apply_update(update)
        assert classic.result() == naive.result()

    def test_handles_deletions(self, movie_db):
        naive = NaiveView(drama_filter(), movie_db)
        classic = ClassicIVMView(drama_filter(), movie_db)
        movie_db.apply_update(deletions("M", [("Drive", "Drama", "Refn")]))
        assert classic.result() == naive.result()
        assert classic.result().is_empty()

    def test_delta_query_is_exposed(self, movie_db):
        classic = ClassicIVMView(drama_filter(), movie_db)
        assert "ΔM" in render(classic.delta_query)

    def test_rejects_queries_outside_the_fragment(self, movie_db, related):
        with pytest.raises(NotInFragmentError):
            ClassicIVMView(related, movie_db)

    def test_does_less_work_than_naive(self):
        database = Database()
        database.register("M", MOVIE_SCHEMA, generate_movies(300))
        naive = NaiveView(drama_filter(), database)
        classic = ClassicIVMView(drama_filter(), database)
        for update in movie_update_stream(2, 2):
            database.apply_update(update)
        assert classic.stats.mean_update_operations < naive.stats.mean_update_operations / 5

    def test_multi_relation_join_view(self):
        database = Database()
        database.register("M", MOVIE_SCHEMA, generate_movies(20, seed=1))
        database.register("S", MOVIE_SCHEMA, generate_movies(20, seed=2))
        query = ast.Product((M, ast.Relation("S", MOVIE_SCHEMA)))
        naive = NaiveView(query, database)
        classic = ClassicIVMView(query, database)
        database.apply_update(
            Update(relations={"M": Bag([("x", "g", "d")]), "S": Bag([("y", "g", "d")])})
        )
        assert classic.result() == naive.result()


class TestPartialEvaluation:
    def test_materializes_database_dependent_subexpressions(self, selfjoin_query):
        first_order = __import__("repro.delta", fromlist=["delta"]).delta(selfjoin_query, ["R"])
        residual, materialized = partially_evaluate(first_order, ["R"])
        assert len(materialized) == 1
        name, expression = materialized[0]
        assert render(expression) == "flatten(R)"
        assert not referenced_relations(residual)
        assert referenced_deltas(residual)

    def test_bare_relations_are_not_materialized(self):
        query = ast.Product((M, M))
        first_order = __import__("repro.delta", fromlist=["delta"]).delta(query, ["M"])
        residual, materialized = partially_evaluate(first_order, ["M"])
        assert materialized == []
        assert "M" in render(residual)


class TestRecursiveIVMView:
    def test_matches_naive_over_a_stream(self, selfjoin_query):
        database = Database()
        database.register("R", NESTED_SCHEMA, Bag([Bag(["a", "b"]), Bag(["c"])]))
        naive = NaiveView(selfjoin_query, database)
        recursive = RecursiveIVMView(selfjoin_query, database)
        for payload in (Bag([Bag(["d"])]), Bag([Bag(["e", "f"])]), Bag.from_pairs([(Bag(["c"]), -1)])):
            database.apply_update(Update(relations={"R": payload}))
        assert recursive.result() == naive.result()

    def test_materializations_are_reported(self, selfjoin_query):
        database = Database()
        database.register("R", NESTED_SCHEMA, Bag([Bag(["a"])]))
        recursive = RecursiveIVMView(selfjoin_query, database)
        assert recursive.materialized_names() == ("__mat0",)
        assert "flatten(ΔR)" in render(recursive.residual_delta)

    def test_materialized_value_is_maintained(self, selfjoin_query):
        database = Database()
        database.register("R", NESTED_SCHEMA, Bag([Bag(["a"])]))
        recursive = RecursiveIVMView(selfjoin_query, database)
        database.apply_update(Update(relations={"R": Bag([Bag(["b"])])}))
        # The materialization lives in a transient builder; freeze to compare.
        materialized = recursive._materializations["__mat0"].value.freeze()
        assert materialized == Bag(["a", "b"])

    def test_flat_query_with_no_materializations_still_works(self, movie_db):
        recursive = RecursiveIVMView(drama_filter(), movie_db)
        naive = NaiveView(drama_filter(), movie_db)
        movie_db.apply_update(insertions("M", [("Melancholia", "Drama", "vonTrier")]))
        assert recursive.result() == naive.result()

    def test_residual_avoids_scanning_the_relation(self, selfjoin_query):
        """Per-update evaluation reads the materialized flatten, not R."""
        database = Database()
        database.register(
            "R", NESTED_SCHEMA, Bag([Bag([f"x{i}"]) for i in range(50)])
        )
        classic = ClassicIVMView(selfjoin_query, database)
        recursive = RecursiveIVMView(selfjoin_query, database)
        database.apply_update(Update(relations={"R": Bag([Bag(["new"])])}))
        assert recursive.result() == classic.result()
        assert (
            recursive.stats.mean_update_operations
            < classic.stats.mean_update_operations
        )
