"""Unit tests for the NRC+ type system."""

import pytest

from repro.nrc.types import (
    BASE,
    BagType,
    BaseType,
    DictType,
    LABEL,
    ProductType,
    UNIT,
    bag_of,
    contains_bag,
    is_flat_type,
    shred_flat_type,
    tuple_of,
    type_depth,
)


class TestConstruction:
    def test_base_types_compare_equal_regardless_of_name(self):
        assert BaseType("String") == BaseType("Int") == BASE
        assert hash(BaseType("String")) == hash(BASE)

    def test_product_requires_components(self):
        with pytest.raises(ValueError):
            ProductType(())

    def test_product_requires_types(self):
        with pytest.raises(TypeError):
            ProductType(("not a type",))  # type: ignore[arg-type]

    def test_bag_requires_type(self):
        with pytest.raises(TypeError):
            BagType("nope")  # type: ignore[arg-type]

    def test_dict_requires_bag_values(self):
        with pytest.raises(TypeError):
            DictType(BASE)  # type: ignore[arg-type]

    def test_render(self):
        type_ = bag_of(tuple_of(BASE, bag_of(BASE)))
        assert type_.render() == "Bag((Base × Bag(Base)))"
        assert UNIT.render() == "1"
        assert LABEL.render() == "L"

    def test_component_access(self):
        product = tuple_of(BASE, UNIT)
        assert product.arity == 2
        assert product.component(1) == UNIT


class TestStructuralPredicates:
    def test_is_flat_type(self):
        assert is_flat_type(BASE)
        assert is_flat_type(tuple_of(BASE, LABEL))
        assert not is_flat_type(bag_of(BASE))
        assert not is_flat_type(tuple_of(BASE, bag_of(BASE)))

    def test_contains_bag(self):
        assert contains_bag(bag_of(BASE))
        assert contains_bag(tuple_of(BASE, bag_of(BASE)))
        assert not contains_bag(tuple_of(BASE, BASE))
        assert contains_bag(DictType(bag_of(BASE)))

    def test_type_depth(self):
        assert type_depth(BASE) == 0
        assert type_depth(bag_of(BASE)) == 1
        assert type_depth(bag_of(bag_of(BASE))) == 2
        assert type_depth(tuple_of(BASE, bag_of(bag_of(BASE)))) == 2


class TestShredTypes:
    def test_base_is_unchanged(self):
        assert shred_flat_type(BASE) == BASE
        assert shred_flat_type(UNIT) == UNIT

    def test_bags_become_labels(self):
        assert shred_flat_type(bag_of(BASE)) == LABEL

    def test_products_shred_componentwise(self):
        nested = tuple_of(BASE, bag_of(tuple_of(BASE, BASE)))
        assert shred_flat_type(nested) == tuple_of(BASE, LABEL)

    def test_dict_types_are_rejected(self):
        with pytest.raises(TypeError):
            shred_flat_type(DictType(bag_of(BASE)))
