"""Unit tests for the predicate sub-language."""

import pytest

from repro.bag import Bag
from repro.errors import EvaluationError
from repro.nrc import predicates as preds


class TestOperands:
    def test_var_path_projects(self):
        operand = preds.var_path("m", 1)
        assert operand.evaluate({"m": ("Drive", "Drama")}) == "Drama"

    def test_var_path_without_path_returns_value(self):
        assert preds.var_path("x").evaluate({"x": 7}) == 7

    def test_var_path_unbound_variable(self):
        with pytest.raises(EvaluationError):
            preds.var_path("x").evaluate({})

    def test_var_path_bad_projection(self):
        with pytest.raises(EvaluationError):
            preds.var_path("x", 3).evaluate({"x": ("a", "b")})

    def test_const_must_be_base_value(self):
        with pytest.raises(TypeError):
            preds.const(("a", "b"))

    def test_render(self):
        assert preds.var_path("m", 0, 1).render() == "m.0.1"
        assert preds.const("Oz").render() == "'Oz'"


class TestComparisons:
    def test_all_operators(self):
        env = {"x": 3, "y": 5}
        assert preds.eq(preds.var_path("x"), preds.const(3)).evaluate(env)
        assert preds.ne(preds.var_path("x"), preds.var_path("y")).evaluate(env)
        assert preds.lt(preds.var_path("x"), preds.var_path("y")).evaluate(env)
        assert preds.le(preds.var_path("x"), preds.const(3)).evaluate(env)
        assert preds.gt(preds.var_path("y"), preds.var_path("x")).evaluate(env)
        assert preds.ge(preds.var_path("y"), preds.const(5)).evaluate(env)

    def test_unknown_operator_rejected(self):
        with pytest.raises(ValueError):
            preds.Comparison("<>", preds.const(1), preds.const(2))

    def test_comparing_bags_is_an_error(self):
        """Appendix A.2: predicates over bags would smuggle in negation."""
        predicate = preds.eq(preds.var_path("x"), preds.const(1))
        with pytest.raises(EvaluationError):
            predicate.evaluate({"x": Bag(["a"])})

    def test_free_vars(self):
        predicate = preds.eq(preds.var_path("m", 1), preds.var_path("m2", 1))
        assert predicate.free_vars() == {"m", "m2"}


class TestBooleanCombinators:
    def test_and_or_not(self):
        env = {"x": 1}
        true = preds.eq(preds.var_path("x"), preds.const(1))
        false = preds.eq(preds.var_path("x"), preds.const(2))
        assert preds.And((true, true)).evaluate(env)
        assert not preds.And((true, false)).evaluate(env)
        assert preds.Or((false, true)).evaluate(env)
        assert not preds.Or((false, false)).evaluate(env)
        assert preds.Not(false).evaluate(env)

    def test_operator_sugar(self):
        env = {"x": 1}
        true = preds.eq(preds.var_path("x"), preds.const(1))
        false = preds.eq(preds.var_path("x"), preds.const(2))
        assert (true & true).evaluate(env)
        assert (true | false).evaluate(env)
        assert (~false).evaluate(env)

    def test_true_predicate(self):
        assert preds.TruePredicate().evaluate({})
        assert preds.TruePredicate().free_vars() == frozenset()

    def test_nested_free_vars(self):
        predicate = preds.And(
            (
                preds.eq(preds.var_path("a"), preds.const(1)),
                preds.Or(
                    (
                        preds.eq(preds.var_path("b"), preds.const(2)),
                        preds.Not(preds.eq(preds.var_path("c"), preds.const(3))),
                    )
                ),
            )
        )
        assert predicate.free_vars() == {"a", "b", "c"}

    def test_render_combinators(self):
        predicate = preds.And(
            (preds.eq(preds.var_path("x"), preds.const(1)), preds.TruePredicate())
        )
        assert "∧" in predicate.render()
        assert "true" in predicate.render()
