"""Property-based tests: Lemma 6 (shred/unshred round trip) on random nested bags."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bag import Bag
from repro.nrc.types import BASE, bag_of, tuple_of
from repro.shredding import shred_bag, unshred_bag, is_consistent

PAIR_WITH_BAG = tuple_of(BASE, bag_of(BASE))
DOUBLE_NESTED = tuple_of(BASE, bag_of(tuple_of(BASE, bag_of(BASE))))

base_values = st.text(alphabet="abcxyz", min_size=1, max_size=3)
inner_bags = st.lists(base_values, max_size=4).map(Bag)
level1_rows = st.tuples(base_values, inner_bags)
level1_bags = st.dictionaries(level1_rows, st.integers(-2, 3), max_size=5).map(Bag.from_mapping)

level2_rows = st.tuples(base_values, st.lists(level1_rows, max_size=3).map(Bag))
level2_bags = st.dictionaries(level2_rows, st.integers(-2, 3), max_size=4).map(Bag.from_mapping)


@settings(max_examples=50, deadline=None)
@given(level1_bags)
def test_roundtrip_depth_one_nesting(value):
    flat, context = shred_bag(value, PAIR_WITH_BAG)
    assert unshred_bag(flat, PAIR_WITH_BAG, context) == value


@settings(max_examples=30, deadline=None)
@given(level2_bags)
def test_roundtrip_depth_two_nesting(value):
    flat, context = shred_bag(value, DOUBLE_NESTED)
    assert unshred_bag(flat, DOUBLE_NESTED, context) == value


@settings(max_examples=30, deadline=None)
@given(level1_bags)
def test_shredding_is_always_consistent(value):
    flat, context = shred_bag(value, PAIR_WITH_BAG)
    assert is_consistent(flat, PAIR_WITH_BAG, context)


@settings(max_examples=30, deadline=None)
@given(level1_bags)
def test_flat_part_has_no_nested_bags(value):
    flat, _ = shred_bag(value, PAIR_WITH_BAG)
    for element in flat.elements():
        assert not isinstance(element[1], Bag)
