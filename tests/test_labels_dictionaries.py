"""Tests for labels and label dictionaries (Section 5.2, Appendix C.2)."""

import pytest

from repro.bag import Bag, EMPTY_BAG
from repro.dictionaries import (
    CombinedDict,
    EMPTY_DICT,
    IntensionalDict,
    MaterializedDict,
)
from repro.errors import DictionaryConflictError
from repro.labels import Label, LabelFactory


class TestLabels:
    def test_labels_are_hashable_value_objects(self):
        a = Label("ι", ("Drive",))
        b = Label("ι", ("Drive",))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_labels_with_different_values_differ(self):
        assert Label("ι", ("a",)) != Label("ι", ("b",))
        assert Label("ι", ()) != Label("κ", ())

    def test_render(self):
        assert Label("ι").render() == "⟨ι⟩"
        assert Label("ι", ("Drive", "Drama")).render() == "⟨ι, Drive, Drama⟩"

    def test_factory_produces_fresh_labels(self):
        factory = LabelFactory("db")
        labels = {factory.fresh("M") for _ in range(100)}
        assert len(labels) == 100
        assert all(label.iota.startswith("db.M.") for label in labels)

    def test_factory_fresh_index(self):
        factory = LabelFactory()
        assert factory.fresh_index() != factory.fresh_index()


LBL1 = Label("l1")
LBL2 = Label("l2")
LBL3 = Label("l3")


class TestMaterializedDict:
    def test_lookup_and_support(self):
        dictionary = MaterializedDict({LBL1: Bag(["b1"])})
        assert dictionary.lookup(LBL1) == Bag(["b1"])
        assert dictionary.lookup(LBL2) == EMPTY_BAG
        assert dictionary.defines(LBL1)
        assert not dictionary.defines(LBL2)
        assert dictionary.support() == {LBL1}

    def test_empty_definition_differs_from_missing(self):
        """supp([]) = ∅ but supp([l ↦ ∅]) = {l} (Section 5.2)."""
        dictionary = MaterializedDict({LBL1: EMPTY_BAG})
        assert dictionary.defines(LBL1)
        assert dictionary.lookup(LBL1) == EMPTY_BAG
        assert EMPTY_DICT.support() == frozenset()

    def test_with_and_without_entry(self):
        dictionary = MaterializedDict({LBL1: Bag(["a"])})
        extended = dictionary.with_entry(LBL2, Bag(["b"]))
        assert extended.defines(LBL2)
        assert not dictionary.defines(LBL2)
        assert not extended.without_entry(LBL1).defines(LBL1)

    def test_equality_and_hash(self):
        a = MaterializedDict({LBL1: Bag(["x"])})
        b = MaterializedDict({LBL1: Bag(["x"])})
        assert a == b
        assert hash(a) == hash(b)


class TestLabelUnionVsAddition:
    """The Appendix C.2 examples contrasting ∪ and ⊎."""

    def test_label_union_merges_disjoint_and_agreeing_definitions(self):
        left = MaterializedDict({LBL1: Bag(["b1"]), LBL2: Bag(["b2", "b3"])})
        right = MaterializedDict({LBL2: Bag(["b2", "b3"]), LBL3: Bag(["b4"])})
        merged = left.label_union(right)
        assert merged.support() == {LBL1, LBL2, LBL3}
        assert merged.lookup(LBL2) == Bag(["b2", "b3"])

    def test_bag_addition_doubles_agreeing_definitions(self):
        left = MaterializedDict({LBL1: Bag(["b1"]), LBL2: Bag(["b2", "b3"])})
        right = MaterializedDict({LBL2: Bag(["b2", "b3"]), LBL3: Bag(["b4"])})
        added = left.add(right)
        assert added.lookup(LBL2) == Bag(["b2", "b2", "b3", "b3"])

    def test_label_union_conflict_is_an_error(self):
        left = MaterializedDict({LBL2: Bag(["b2", "b3"])})
        right = MaterializedDict({LBL2: Bag(["b5"])})
        with pytest.raises(DictionaryConflictError):
            left.label_union(right)

    def test_bag_addition_merges_conflicting_definitions(self):
        left = MaterializedDict({LBL2: Bag(["b2", "b3"])})
        right = MaterializedDict({LBL2: Bag(["b5"])})
        assert left.add(right).lookup(LBL2) == Bag(["b2", "b3", "b5"])

    def test_addition_can_delete_elements(self):
        """Deep deletions: adding a negative-multiplicity delta."""
        base = MaterializedDict({LBL1: Bag(["x", "y"])})
        delta = MaterializedDict({LBL1: Bag.from_pairs([("x", -1)])})
        assert base.add(delta).lookup(LBL1) == Bag(["y"])


class TestIntensionalDict:
    def test_lookup_dispatches_on_iota(self):
        dictionary = IntensionalDict("ι", lambda values: Bag([values[0] + "!"]))
        assert dictionary.lookup(Label("ι", ("hi",))) == Bag(["hi!"])
        assert dictionary.lookup(Label("other", ("hi",))) == EMPTY_BAG
        assert dictionary.support() is None
        assert dictionary.defines(Label("ι", ("anything",)))

    def test_materialize_restricts_to_given_labels(self):
        dictionary = IntensionalDict("ι", lambda values: Bag([values[0]]))
        labels = [Label("ι", ("a",)), Label("ι", ("b",))]
        materialized = dictionary.materialize(labels)
        assert materialized.support() == set(labels)
        assert materialized.lookup(labels[0]) == Bag(["a"])


class TestCombinedDict:
    def test_union_with_intensional_part(self):
        left = MaterializedDict({LBL1: Bag(["a"])})
        right = IntensionalDict("ι", lambda values: Bag(["body"]))
        combined = left.label_union(right)
        assert isinstance(combined, CombinedDict)
        assert combined.lookup(LBL1) == Bag(["a"])
        assert combined.lookup(Label("ι", ())) == Bag(["body"])
        assert combined.support() is None

    def test_union_conflict_detected_at_lookup(self):
        left = MaterializedDict({Label("ι", ()): Bag(["a"])})
        right = IntensionalDict("ι", lambda values: Bag(["b"]))
        combined = left.label_union(right)
        with pytest.raises(DictionaryConflictError):
            combined.lookup(Label("ι", ()))

    def test_add_with_intensional_part(self):
        left = MaterializedDict({Label("ι", ()): Bag(["a"])})
        right = IntensionalDict("ι", lambda values: Bag(["b"]))
        combined = left.add(right)
        assert combined.lookup(Label("ι", ())) == Bag(["a", "b"])

    def test_combined_mode_validation(self):
        with pytest.raises(ValueError):
            CombinedDict((EMPTY_DICT,), mode="bogus")
