"""Smoke tests for the experiment suite: every runner produces a sound table.

Each experiment is exercised with tiny parameters; the assertions check the
qualitative shape that EXPERIMENTS.md reports (who wins, what stays constant,
what grows), not absolute numbers.
"""

import pytest

from repro.bench import experiments


class TestExperimentRunners:
    def test_e1_related_ivm_beats_naive(self):
        table = experiments.run_e1_related_ivm(sizes=(30, 60), batch_size=2, num_updates=1)
        assert len(table.rows) == 2
        assert all(row["speedup"] > 1 for row in table.rows)
        # The advantage grows with n (asymptotic separation).
        assert table.rows[-1]["speedup"] > table.rows[0]["speedup"]

    def test_e2_filter_delta_is_constant_work(self):
        table = experiments.run_e2_filter_delta(sizes=(100, 400), batch_size=2, num_updates=1)
        ops = table.column("classic_ivm_ops")
        assert max(ops) <= 4 * min(ops)  # essentially independent of n
        naive = table.column("naive_ops")
        assert naive[-1] > naive[0] * 2  # naive grows with n

    def test_e3_recursive_beats_classic(self):
        table = experiments.run_e3_selfjoin_recursive(sizes=(10, 20), inner_cardinality=3, num_updates=1)
        for row in table.rows:
            assert row["recursive_ops"] <= row["classic_ops"]
            assert row["classic_ops"] < row["naive_ops"]

    def test_e4_flat_join_runs(self):
        table = experiments.run_e4_flat_join(sizes=(100,), batch_size=2, num_updates=1)
        assert len(table.rows) == 1
        assert table.rows[0]["naive_seconds"] >= 0

    def test_e5_shredding_roundtrip_is_lossless(self):
        table = experiments.run_e5_shredding_roundtrip(depths=(1, 2), top_cardinality=10, inner_cardinality=2)
        assert all(row["roundtrip_ok"] for row in table.rows)
        assert all(row["query_equivalent"] for row in table.rows)

    def test_e6_cost_model_ratio_is_bounded(self):
        table = experiments.run_e6_cost_model(sizes=(20, 40))
        by_query = {}
        for row in table.rows:
            by_query.setdefault(row["query"], []).append(row["measured_over_predicted"])
        for ratios in by_query.values():
            assert max(ratios) <= 4 * min(ratios)

    def test_e7_degree_towers_match_theorem(self):
        table = experiments.run_e7_degree_towers(max_degree=3)
        assert all(row["matches_theorem"] for row in table.rows)
        assert [row["tower_height"] for row in table.rows] == [1, 2, 3]

    def test_e8_deep_updates_touch_only_their_labels(self):
        table = experiments.run_e8_deep_updates(sizes=(20, 80), inner_cardinality=3, touched_labels=2)
        ops = table.column("ivm_ops")
        assert ops[0] == ops[1]  # independent of database size
        rebuild = table.column("rebuild_size")
        assert rebuild[1] > rebuild[0]

    def test_e9_circuit_cones_separate(self):
        table = experiments.run_e9_circuit_cones(slot_counts=(4, 16), k=3)
        update_cones = table.column("update_cone")
        recompute_cones = table.column("recompute_cone")
        assert update_cones[0] == update_cones[1] == 6
        assert recompute_cones[1] > recompute_cones[0]

    def test_e10_crossover_shrinks_with_batch_size(self):
        table = experiments.run_e10_crossover(size=60, batch_fractions=(0.05, 1.0))
        speedups = table.column("speedup")
        assert speedups[0] > speedups[-1]

    def test_registry_and_cli(self, capsys):
        assert set(experiments.ALL_EXPERIMENTS) == {f"E{i}" for i in range(1, 11)}
        exit_code = experiments.main(["E7"])
        assert exit_code == 0
        assert "E7" in capsys.readouterr().out

    def test_cli_rejects_unknown_experiment(self, capsys):
        assert experiments.main(["E99"]) == 2
