"""Tests for the shredded-input naming convention and environment construction."""

from repro.bag import Bag
from repro.dictionaries import MaterializedDict
from repro.labels import Label
from repro.nrc import ast
from repro.nrc.types import BASE, LABEL, bag_of, tuple_of
from repro.shredding import (
    BagContext,
    TupleContext,
    build_shredded_environment,
    flat_relation_name,
    input_context_for,
    input_dict_name,
    shred_relation,
)

NESTED_PAIR = tuple_of(BASE, bag_of(BASE))


class TestNaming:
    def test_flat_relation_name(self):
        assert flat_relation_name("M") == "M__F"

    def test_input_dict_names(self):
        assert input_dict_name("R", ()) == "R__D"
        assert input_dict_name("R", (1,)) == "R__D__1"
        assert input_dict_name("R", (1, "e", 0)) == "R__D__1_e_0"


class TestInputContexts:
    def test_flat_relation_has_unit_contexts_only(self):
        context = input_context_for("M", tuple_of(BASE, BASE))
        assert isinstance(context, TupleContext)
        assert all(not isinstance(c, BagContext) for c in context.components)

    def test_nested_relation_gets_dict_vars(self):
        context = input_context_for("R", NESTED_PAIR)
        dictionary = context.components[1].dictionary
        assert dictionary == ast.DictVar("R__D__1", bag_of(BASE))

    def test_doubly_nested_relation(self):
        element = bag_of(tuple_of(BASE, bag_of(BASE)))
        context = input_context_for("R", element)
        assert isinstance(context, BagContext)
        assert context.dictionary == ast.DictVar("R__D", bag_of(tuple_of(BASE, LABEL)))
        inner = context.element.components[1].dictionary
        assert inner == ast.DictVar("R__D__e_1", bag_of(BASE))


class TestShreddingRelations:
    def test_shred_relation_produces_flat_bag_and_dicts(self):
        bag = Bag([("a", Bag(["x", "y"])), ("b", Bag(["z"]))])
        shredded = shred_relation("R", bag, NESTED_PAIR)
        assert shredded.flat.cardinality() == 2
        assert set(shredded.dictionaries) == {"R__D__1"}
        dictionary = shredded.dictionaries["R__D__1"]
        assert len(dictionary.support()) == 2

    def test_flat_relation_has_empty_dict_entries_registered(self):
        bag = Bag([])
        shredded = shred_relation("R", bag, NESTED_PAIR)
        assert set(shredded.dictionaries) == {"R__D__1"}
        assert isinstance(shredded.dictionaries["R__D__1"], MaterializedDict)

    def test_build_shredded_environment(self):
        relations = {
            "M": Bag([("a", "g", "d")]),
            "R": Bag([("k", Bag(["x"]))]),
        }
        schemas = {"M": bag_of(tuple_of(BASE, BASE, BASE)), "R": bag_of(NESTED_PAIR)}
        env = build_shredded_environment(relations, schemas)
        assert "M__F" in env.relations
        assert "R__F" in env.relations
        assert "R__D__1" in env.dictionaries
        label = next(iter(env.dictionaries["R__D__1"].support()))
        assert isinstance(label, Label)

    def test_shared_shredder_keeps_labels_unique_across_relations(self):
        from repro.shredding import ValueShredder

        shredder = ValueShredder()
        first = shred_relation("A", Bag([("k", Bag(["x"]))]), NESTED_PAIR, shredder)
        second = shred_relation("B", Bag([("k", Bag(["y"]))]), NESTED_PAIR, shredder)
        labels_a = first.dictionaries["A__D__1"].support()
        labels_b = second.dictionaries["B__D__1"].support()
        assert labels_a.isdisjoint(labels_b)
