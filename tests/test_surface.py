"""Tests for the comprehension DSL and record schemas."""

import pytest

from repro.bag import Bag
from repro.errors import TypeCheckError
from repro.ivm import Database, NaiveView, NestedIVMView, insertions
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.types import BagType, ProductType
from repro.surface import Dataset, Record, STRING, field_types, nest
from repro.workloads import MOVIE_RECORD, MOVIE_SCHEMA, PAPER_MOVIES, related_query, related_query_dsl


class TestRecords:
    def test_field_positions_and_types(self):
        assert MOVIE_RECORD.position("gen") == 1
        assert MOVIE_RECORD.field_names == ("name", "gen", "dir")
        assert MOVIE_RECORD.field_type("dir") == STRING

    def test_unknown_field_rejected(self):
        with pytest.raises(TypeCheckError):
            MOVIE_RECORD.position("missing")

    def test_duplicate_fields_rejected(self):
        with pytest.raises(TypeCheckError):
            Record("Bad", (("a", STRING), ("a", STRING)))

    def test_bag_type(self):
        assert MOVIE_RECORD.bag_type() == MOVIE_SCHEMA
        assert isinstance(MOVIE_RECORD.product_type(), ProductType)

    def test_single_field_record_is_bare(self):
        record = Record("Name", field_types(name=STRING))
        assert record.product_type() == STRING
        assert record.as_dict("Drive") == {"name": "Drive"}

    def test_as_dict(self):
        assert MOVIE_RECORD.as_dict(("Drive", "Drama", "Refn")) == {
            "name": "Drive",
            "gen": "Drama",
            "dir": "Refn",
        }


class TestQueryBuilding:
    def test_dsl_related_equals_ast_related(self, paper_movies):
        env = Environment(relations={"M": paper_movies})
        assert evaluate_bag(related_query_dsl(), env) == evaluate_bag(related_query(), env)

    def test_filter_and_project(self, paper_movies):
        movies = Dataset("M", MOVIE_RECORD)
        m = movies.row("m")
        query = movies.iterate(m).where(m.field("gen") == "Action").select(m.field("name"))
        result = evaluate_bag(query.to_expr(), Environment(relations={"M": paper_movies}))
        assert result == Bag(["Skyfall", "Rush"])

    def test_condition_combinators(self, paper_movies):
        movies = Dataset("M", MOVIE_RECORD)
        m = movies.row("m")
        condition = (m.field("gen") == "Action") & ~(m.field("name") == "Rush")
        query = movies.iterate(m).where(condition).select(m.field("name"))
        result = evaluate_bag(query.to_expr(), Environment(relations={"M": paper_movies}))
        assert result == Bag(["Skyfall"])

    def test_comparisons_against_other_fields(self, paper_movies):
        movies = Dataset("M", MOVIE_RECORD)
        m, m2 = movies.row("m"), movies.row("m2")
        inner = movies.iterate(m2).where(m.field("gen") == m2.field("gen")).select(m2.field("name"))
        query = movies.iterate(m).select(m.field("name"), nest(inner))
        result = evaluate_bag(query.to_expr(), Environment(relations={"M": paper_movies}))
        rows = dict(result.elements())
        assert rows["Skyfall"] == Bag(["Skyfall", "Rush"])

    def test_select_whole_row(self, paper_movies):
        movies = Dataset("M", MOVIE_RECORD)
        m = movies.row("m")
        query = movies.iterate(m).select(m)
        result = evaluate_bag(query.to_expr(), Environment(relations={"M": paper_movies}))
        assert result == paper_movies

    def test_identity_without_select(self, paper_movies):
        movies = Dataset("M", MOVIE_RECORD)
        m = movies.row("m")
        result = evaluate_bag(movies.iterate(m).to_expr(), Environment(relations={"M": paper_movies}))
        assert result == paper_movies

    def test_output_record_names(self):
        movies = Dataset("M", MOVIE_RECORD)
        m, m2 = movies.row("m"), movies.row("m2")
        inner = movies.iterate(m2).select(m2.field("name"))
        query = movies.iterate(m).select(m.field("name"), nest(inner))
        record = query.output_record()
        assert record.field_names == ("name", "nested_1")
        assert isinstance(record.field_type("nested_1"), BagType)

    def test_iterate_over_query_output(self, paper_movies):
        movies = Dataset("M", MOVIE_RECORD)
        m = movies.row("m")
        dramas = movies.iterate(m).where(m.field("gen") == "Drama")
        d = dramas.row("d") if hasattr(dramas, "row") else None
        # Nested iteration uses the output record of the inner query.
        from repro.surface.dsl import RowVar

        d = RowVar("d", dramas.output_record())
        names = dramas.iterate(d).select(d.field("name"))
        result = evaluate_bag(names.to_expr(), Environment(relations={"M": paper_movies}))
        assert result == Bag(["Drive"])

    def test_empty_select_rejected(self):
        movies = Dataset("M", MOVIE_RECORD)
        m = movies.row("m")
        with pytest.raises(TypeCheckError):
            movies.iterate(m).select()

    def test_literal_select_items_rejected(self):
        from repro.surface import lit

        movies = Dataset("M", MOVIE_RECORD)
        m = movies.row("m")
        with pytest.raises(TypeCheckError):
            movies.iterate(m).select(lit("constant")).to_expr()


class TestDSLWithIVM:
    def test_dsl_query_is_maintainable(self, paper_movies):
        database = Database()
        database.register("M", MOVIE_SCHEMA, paper_movies)
        query = related_query_dsl()
        naive = NaiveView(query, database)
        nested = NestedIVMView(query, database)
        database.apply_update(insertions("M", [("Jarhead", "Drama", "Mendes")]))
        assert nested.result() == naive.result()
