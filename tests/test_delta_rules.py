"""Tests for the delta transformation (Figure 4) and Proposition 4.1.

Besides rule-by-rule checks, the key correctness statement
``h[R ⊎ ΔR] = h[R] ⊎ δ(h)[R, ΔR]`` is verified on concrete instances for
every construct of IncNRC+.
"""

import pytest

from repro.bag import Bag, EMPTY_BAG
from repro.delta import delta, delta_var_name, depends_on
from repro.errors import NotInFragmentError
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.pretty import render
from repro.nrc.types import BASE, bag_of, tuple_of

MOVIE = tuple_of(BASE, BASE, BASE)
M = ast.Relation("M", bag_of(MOVIE))
NESTED = bag_of(bag_of(BASE))
R = ast.Relation("R", NESTED)


def check_proposition_4_1(query, relations, update_bags, targets=None):
    """h[R ⊎ ΔR] == h[R] ⊎ δ(h)[R, ΔR] on concrete instances."""
    delta_query = delta(query, targets)
    old_env = Environment(relations=relations)
    updated_relations = dict(relations)
    for name, update in update_bags.items():
        updated_relations[name] = updated_relations[name].union(update)
    new_env = Environment(relations=updated_relations)
    delta_env = Environment(
        relations=relations,
        deltas={(name, 1): bag for name, bag in update_bags.items()},
    )
    direct = evaluate_bag(query, new_env)
    incremental = evaluate_bag(query, old_env).union(evaluate_bag(delta_query, delta_env))
    assert direct == incremental
    return delta_query


class TestDeltaRules:
    def test_delta_of_relation_is_the_update_symbol(self):
        assert delta(M, ["M"]) == ast.DeltaRelation("M", bag_of(MOVIE), 1)

    def test_delta_of_untouched_relation_is_empty(self):
        assert delta(M, ["S"]) == ast.Empty()

    def test_delta_of_input_independent_constructs_is_empty(self):
        for expr in (ast.SngUnit(), ast.Empty(), ast.SngVar("x"), ast.SngProj("x", (0,))):
            assert delta(expr, ["M"]) == ast.Empty()

    def test_delta_of_filter_matches_example_3(self):
        query = build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x")
        result = delta(query, ["M"])
        assert render(result) == "for x in ΔM where x.1 == 'Drama' union sng(x)"

    def test_delta_of_product_has_three_terms(self):
        query = ast.Product((ast.Flatten(R), ast.Flatten(R)))
        result = delta(query, ["R"], auto_simplify=True)
        assert isinstance(result, ast.Union)
        assert len(result.terms) == 3

    def test_delta_of_union_distributes(self):
        query = ast.Union((M, M))
        result = delta(query, ["M"])
        assert result == ast.Union(
            (
                ast.DeltaRelation("M", bag_of(MOVIE), 1),
                ast.DeltaRelation("M", bag_of(MOVIE), 1),
            )
        )

    def test_delta_of_negate_and_flatten_commute(self):
        assert delta(ast.Negate(M), ["M"]) == ast.Negate(ast.DeltaRelation("M", bag_of(MOVIE), 1))
        assert delta(ast.Flatten(R), ["R"]) == ast.Flatten(ast.DeltaRelation("R", NESTED, 1))

    def test_delta_of_unrestricted_sng_is_rejected(self, related):
        with pytest.raises(NotInFragmentError):
            delta(related, ["M"])

    def test_delta_of_sng_star_is_empty(self):
        query = ast.For("m", M, ast.Sng(ast.SngProj("m", (0,))))
        result = delta(query, ["M"])
        # Only the source changes; the sng* body contributes nothing.
        assert render(result) == "for m in ΔM union sng(sng(π_0(m)))"

    def test_delta_order_controls_symbols(self):
        assert delta(M, ["M"], order=3) == ast.DeltaRelation("M", bag_of(MOVIE), 3)
        with pytest.raises(ValueError):
            delta(M, ["M"], order=0)

    def test_delta_var_name(self):
        assert delta_var_name("X") == "ΔX"
        assert delta_var_name("X", 2) == "Δ2X"

    def test_depends_on_tracks_let_bindings(self):
        expr = ast.Let("X", M, ast.BagVar("X"))
        assert depends_on(expr, frozenset({"M"}))
        assert not depends_on(expr, frozenset({"S"}))

    def test_delta_of_dict_singleton_differentiates_body(self):
        body = ast.For("m2", M, ast.SngProj("m2", (0,)))
        dictionary = ast.DictSingleton("ι", ("m",), body)
        result = delta(dictionary, ["M"])
        assert isinstance(result, ast.DictSingleton)
        assert "ΔM" in render(result)

    def test_delta_of_dict_var(self):
        dictionary = ast.DictVar("D", bag_of(BASE))
        assert delta(dictionary, ["D"]) == ast.DeltaDictVar("D", bag_of(BASE), 1)
        assert delta(dictionary, ["M"]) == ast.DictEmpty()

    def test_delta_of_dict_lookup(self):
        lookup = ast.DictLookup(ast.DictVar("D", bag_of(BASE)), "l")
        result = delta(lookup, ["D"])
        assert result == ast.DictLookup(ast.DeltaDictVar("D", bag_of(BASE), 1), "l")


class TestProposition41:
    """Concrete-instance checks of h[R ⊎ ΔR] = h[R] ⊎ δ(h)[R, ΔR]."""

    movies = Bag([("Drive", "Drama", "Refn"), ("Skyfall", "Action", "Mendes")])
    movie_update = Bag([("Jarhead", "Drama", "Mendes"), ("Rush", "Action", "Howard")])
    movie_deletion = Bag.from_pairs([(("Drive", "Drama", "Refn"), -1)])
    nested = Bag([Bag(["a", "b"]), Bag(["c"])])
    nested_update = Bag([Bag(["d"])])

    def test_filter(self):
        query = build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x")
        check_proposition_4_1(query, {"M": self.movies}, {"M": self.movie_update})

    def test_filter_with_deletion(self):
        query = build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x")
        check_proposition_4_1(query, {"M": self.movies}, {"M": self.movie_deletion})

    def test_projection(self):
        query = ast.For("m", M, ast.SngProj("m", (0,)))
        check_proposition_4_1(query, {"M": self.movies}, {"M": self.movie_update})

    def test_self_product(self):
        query = ast.Product((M, M))
        check_proposition_4_1(query, {"M": self.movies}, {"M": self.movie_update})

    def test_flatten(self):
        query = ast.Flatten(R)
        check_proposition_4_1(query, {"R": self.nested}, {"R": self.nested_update})

    def test_selfjoin_on_flattened_bags(self, selfjoin_query):
        check_proposition_4_1(selfjoin_query, {"R": self.nested}, {"R": self.nested_update})

    def test_union_and_negate(self):
        query = ast.Union((M, ast.Negate(M)))
        check_proposition_4_1(query, {"M": self.movies}, {"M": self.movie_update})

    def test_nested_for_join(self):
        predicate = preds.eq(preds.var_path("m", 1), preds.var_path("m2", 1))
        inner = build.for_in("m2", M, build.proj("m2", 0), condition=predicate)
        query = ast.For("m", M, inner)
        check_proposition_4_1(query, {"M": self.movies}, {"M": self.movie_update})

    def test_let_binding(self):
        query = ast.Let("X", M, ast.Product((ast.BagVar("X"), ast.BagVar("X"))))
        check_proposition_4_1(query, {"M": self.movies}, {"M": self.movie_update})

    def test_multi_relation_update(self):
        other = ast.Relation("S", bag_of(MOVIE))
        query = ast.Product((M, other))
        check_proposition_4_1(
            query,
            {"M": self.movies, "S": self.movies},
            {"M": self.movie_update, "S": self.movie_deletion},
        )

    def test_only_some_relations_updated(self):
        other = ast.Relation("S", bag_of(MOVIE))
        query = ast.Product((M, other))
        check_proposition_4_1(
            query,
            {"M": self.movies, "S": self.movies},
            {"M": self.movie_update},
            targets=["M"],
        )

    def test_sng_star_query(self):
        query = ast.For("m", M, ast.Sng(ast.SngProj("m", (0,))))
        check_proposition_4_1(query, {"M": self.movies}, {"M": self.movie_update})
