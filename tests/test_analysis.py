"""Unit tests for static analyses (free variables, input dependence, IncNRC+)."""

from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.analysis import (
    annotate_sng_indices,
    free_bag_vars,
    free_elem_vars,
    is_incremental_fragment,
    is_input_independent,
    max_delta_order,
    referenced_deltas,
    referenced_relations,
    referenced_sources,
    sng_occurrences,
    unrestricted_sng_occurrences,
)
from repro.nrc.types import BASE, bag_of, tuple_of

MOVIE = tuple_of(BASE, BASE, BASE)
M = ast.Relation("M", bag_of(MOVIE))


class TestFreeVariables:
    def test_for_binds_its_variable(self):
        expr = ast.For("m", M, ast.SngProj("m", (0,)))
        assert free_elem_vars(expr) == frozenset()

    def test_free_var_in_body_of_for(self):
        expr = ast.For("m2", M, ast.Pred(preds.eq(preds.var_path("m", 0), preds.var_path("m2", 0))))
        assert free_elem_vars(expr) == {"m"}

    def test_inner_query_of_related_depends_on_outer_var(self, related):
        inner = sng_occurrences(related)[0].body
        assert free_elem_vars(inner) == {"m"}
        assert free_elem_vars(related) == frozenset()

    def test_in_label_and_dict_lookup_vars(self):
        assert free_elem_vars(ast.InLabel("ι", ("a", "b"))) == {"a", "b"}
        lookup = ast.DictLookup(ast.DictVar("D", bag_of(BASE)), "l", (1,))
        assert free_elem_vars(lookup) == {"l"}

    def test_dict_singleton_binds_params(self):
        body = ast.SngProj("m", (0,))
        expr = ast.DictSingleton("ι", ("m",), body)
        assert free_elem_vars(expr) == frozenset()

    def test_let_binds_bag_var(self):
        expr = ast.Let("X", M, ast.BagVar("X"))
        assert free_bag_vars(expr) == frozenset()
        assert free_bag_vars(ast.BagVar("Y")) == {"Y"}

    def test_let_bound_in_definition_is_free(self):
        expr = ast.Let("X", ast.BagVar("X"), ast.BagVar("X"))
        assert free_bag_vars(expr) == {"X"}


class TestInputDependence:
    def test_referenced_relations(self, related):
        assert referenced_relations(related) == {"M"}

    def test_referenced_dictionaries(self):
        lookup = ast.DictLookup(ast.DictVar("D", bag_of(BASE)), "l")
        assert referenced_sources(lookup) == {"D"}

    def test_referenced_deltas_and_order(self):
        expr = ast.Union(
            (
                ast.DeltaRelation("M", bag_of(MOVIE), 1),
                ast.DeltaRelation("M", bag_of(MOVIE), 2),
            )
        )
        assert referenced_deltas(expr) == {("M", 1), ("M", 2)}
        assert max_delta_order(expr) == 2
        assert max_delta_order(M) == 0

    def test_input_independent_expressions(self):
        assert is_input_independent(ast.SngUnit())
        assert is_input_independent(ast.Empty())
        assert is_input_independent(ast.DeltaRelation("M", bag_of(MOVIE)))
        assert not is_input_independent(M)

    def test_let_propagates_dependence(self):
        dependent = ast.Let("X", M, ast.BagVar("X"))
        assert not is_input_independent(dependent)
        independent = ast.Let("X", ast.SngUnit(), ast.BagVar("X"))
        assert is_input_independent(independent)

    def test_shadowing_let_removes_dependence(self):
        expr = ast.Let("X", ast.SngUnit(), ast.BagVar("X"))
        assert is_input_independent(expr, dependent_vars=frozenset({"X"}))


class TestIncNRCMembership:
    def test_related_is_outside_the_fragment(self, related):
        assert not is_incremental_fragment(related)
        assert len(unrestricted_sng_occurrences(related)) == 1

    def test_filter_is_inside_the_fragment(self):
        query = build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x")
        assert is_incremental_fragment(query)

    def test_sng_star_is_inside_the_fragment(self):
        query = ast.For("m", M, ast.Sng(ast.SngProj("m", (0,))))
        assert is_incremental_fragment(query)

    def test_let_bound_dependence_is_tracked(self):
        query = ast.Let("X", M, ast.Sng(ast.BagVar("X")))
        assert not is_incremental_fragment(query)

    def test_selfjoin_is_inside_the_fragment(self, selfjoin_query):
        assert is_incremental_fragment(selfjoin_query)


class TestSngIndexing:
    def test_annotation_assigns_indices_in_preorder(self, related):
        annotated = annotate_sng_indices(related)
        indices = [node.iota for node in sng_occurrences(annotated)]
        assert indices == ["ι0"]

    def test_annotation_is_stable(self, related):
        once = annotate_sng_indices(related)
        twice = annotate_sng_indices(once)
        assert once == twice

    def test_existing_indices_are_preserved(self):
        query = ast.For("m", M, ast.Sng(ast.SngProj("m", (0,)), iota="custom"))
        annotated = annotate_sng_indices(query)
        assert sng_occurrences(annotated)[0].iota == "custom"

    def test_multiple_sngs_get_distinct_indices(self):
        query = ast.Union(
            (
                ast.For("m", M, ast.Sng(ast.SngProj("m", (0,)))),
                ast.For("m", M, ast.Sng(ast.SngProj("m", (1,)))),
            )
        )
        annotated = annotate_sng_indices(query)
        indices = [node.iota for node in sng_occurrences(annotated)]
        assert len(set(indices)) == 2
