"""Shared fixtures: the paper's running example and helper builders."""

from __future__ import annotations

import pytest

from repro.bag import Bag
from repro.ivm import Database
from repro.nrc import ast
from repro.nrc.evaluator import Environment
from repro.nrc.types import BASE, bag_of, tuple_of
from repro.workloads import MOVIE_SCHEMA, PAPER_MOVIES, PAPER_UPDATE, related_query


@pytest.fixture
def paper_movies() -> Bag:
    """The three-movie instance of Example 1."""
    return PAPER_MOVIES


@pytest.fixture
def paper_update() -> Bag:
    """The single-tuple ⟨Jarhead, Drama, Mendes⟩ update of Example 1."""
    return PAPER_UPDATE


@pytest.fixture
def movie_env(paper_movies) -> Environment:
    return Environment(relations={"M": paper_movies})


@pytest.fixture
def related():
    """The nested ``related`` query of the motivating example."""
    return related_query()


@pytest.fixture
def movie_db(paper_movies) -> Database:
    database = Database()
    database.register("M", MOVIE_SCHEMA, paper_movies)
    return database


@pytest.fixture
def bag_of_bags_schema():
    return bag_of(bag_of(BASE))


@pytest.fixture
def selfjoin_query(bag_of_bags_schema):
    """Example 4's ``flatten(R) × flatten(R)``."""
    relation = ast.Relation("R", bag_of_bags_schema)
    return ast.Product((ast.Flatten(relation), ast.Flatten(relation)))
