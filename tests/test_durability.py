"""Durability: WAL, checkpoints, replay-on-open, fault-injected recovery.

Covers the record/segment formats (including satellite torn-frame and
flipped-CRC cases at the WAL record boundary), checkpoint write/load
atomicity, the engine's replay-on-open contract (torn tails truncated,
corrupt segments quarantined with read-only degradation), differential
crash-recovery across maintenance strategies, lifecycle idempotency
(``Engine.close`` under concurrent applies), the in-memory engine's
unchanged behavior without a ``data_dir``, and the serving layer's
durable-tenant features (sync-before-ack, checkpoint route, recovery 503 +
``Retry-After`` and the SDK's retry of it).
"""

from __future__ import annotations

import os
import threading
import time

import pytest

from repro.bag import Bag
from repro.bag.codec import decode_pairs, encode_pairs
from repro.client.api import APIClient, APIError
from repro.client.resources import (
    DatasetsClient,
    ServerClient,
    UpdatesClient,
    ViewsClient,
)
from repro.durability import (
    CRASH_POINTS,
    FaultInjector,
    InjectedCrash,
    WriteAheadLog,
    resolve_fsync_policy,
)
from repro.durability.checkpoint import (
    list_checkpoints,
    load_newest_checkpoint,
)
from repro.durability.faultcheck import build_ops, run_battery
from repro.durability.faults import (
    apply_op,
    crash_and_recover,
    engine_state,
    state_differences,
)
from repro.durability.records import (
    decode_record,
    encode_dataset_record,
    encode_update_record,
    encode_vacuum_record,
)
from repro.durability.wal import list_segments, scan_segment
from repro.engine import Engine
from repro.errors import EngineError, WorkloadError
from repro.ivm.updates import Update, insertions
from repro.serve import ReproServer, ServerConfig
from repro.serve.protocol import ProtocolError
from repro.serve.sessions import SessionManager, TenantSession
from repro.workloads import (
    MOVIE_SCHEMA,
    PAPER_MOVIES,
    generate_movies,
    movie_update_stream,
    related_query,
)
from repro.workloads.movies import genre_selfjoin_query


def _drive(engine: Engine, updates: int = 3) -> None:
    """The standard small workload: dataset, nested view, update stream."""
    engine.dataset("M", MOVIE_SCHEMA, rows=PAPER_MOVIES)
    engine.view("related", related_query(), strategy="nested")
    for update in movie_update_stream(updates, batch_size=2, existing=PAPER_MOVIES):
        engine.apply(update)


def _write_corrupted_first_segment(tmp_path, subdir: str = "db") -> str:
    """A data_dir whose *first* (non-tail) WAL segment has a flipped byte —
    recovery quarantines it and degrades the reopened engine to read-only."""
    data_dir = str(tmp_path / subdir)
    engine = Engine(data_dir=data_dir, fsync="always")
    engine.dataset("M", MOVIE_SCHEMA, rows=PAPER_MOVIES)
    engine._durability._wal.rotate()
    for update in movie_update_stream(2, batch_size=1, existing=PAPER_MOVIES):
        engine.apply(update)
    engine.close()
    _, first = list_segments(os.path.join(data_dir, "wal"))[0]
    with open(first, "r+b") as handle:
        handle.seek(12)
        byte = handle.read(1)
        handle.seek(12)
        handle.write(bytes([byte[0] ^ 0xFF]))
    return data_dir


# --------------------------------------------------------------------------- #
# WAL segments and frames
# --------------------------------------------------------------------------- #
class TestWAL:
    def test_append_and_scan_round_trip(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync="batch")
        payloads = [b"alpha", b"b" * 1000, b""]
        for payload in payloads:
            wal.append(payload)
        wal.sync()
        wal.close()
        segments = list_segments(str(tmp_path))
        assert [number for number, _ in segments] == [1]
        scan = scan_segment(1, segments[0][1], is_last=True)
        assert scan.status == "ok"
        assert scan.payloads == payloads

    def test_rotation_by_size(self, tmp_path):
        wal = WriteAheadLog(str(tmp_path), fsync="batch", segment_bytes=64)
        for index in range(8):
            wal.append(b"x" * 48)
            wal.sync()
        wal.close()
        numbers = [number for number, _ in list_segments(str(tmp_path))]
        assert len(numbers) > 1 and numbers == sorted(numbers)
        recovered = []
        for position, (number, path) in enumerate(list_segments(str(tmp_path))):
            scan = scan_segment(number, path, is_last=position == len(numbers) - 1)
            assert scan.status == "ok"
            recovered.extend(scan.payloads)
        assert recovered == [b"x" * 48] * 8

    def test_fsync_policy_resolution(self, monkeypatch):
        assert resolve_fsync_policy("always") == "always"
        monkeypatch.setenv("REPRO_FSYNC", "off")
        assert resolve_fsync_policy() == "off"
        monkeypatch.delenv("REPRO_FSYNC")
        assert resolve_fsync_policy() == "batch"
        with pytest.raises(ValueError):
            resolve_fsync_policy("sometimes")

    def _write_segment(self, tmp_path, payloads):
        wal = WriteAheadLog(str(tmp_path), fsync="always")
        for payload in payloads:
            wal.append(payload)
        wal.close()
        return list_segments(str(tmp_path))[0][1]

    def test_torn_mid_record_is_truncated(self, tmp_path):
        path = self._write_segment(tmp_path, [b"first", b"second-payload"])
        size = os.path.getsize(path)
        os.truncate(path, size - 5)  # cut into the last payload
        scan = scan_segment(1, path, is_last=True)
        assert scan.status == "torn"
        assert scan.payloads == [b"first"]
        assert scan.valid_bytes < size - 5

    def test_torn_mid_length_prefix_is_truncated(self, tmp_path):
        path = self._write_segment(tmp_path, [b"first", b"second-payload"])
        size = os.path.getsize(path)
        # Leave 3 bytes of the second frame's 8-byte length+crc prefix.
        os.truncate(path, size - len(b"second-payload") - 5)
        scan = scan_segment(1, path, is_last=True)
        assert scan.status == "torn"
        assert scan.payloads == [b"first"]

    def test_flipped_crc_in_final_record_is_torn(self, tmp_path):
        path = self._write_segment(tmp_path, [b"first", b"second-payload"])
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0xFF]))
        scan = scan_segment(1, path, is_last=True)
        assert scan.status == "torn"
        assert scan.payloads == [b"first"]

    def test_flipped_byte_mid_segment_is_corrupt(self, tmp_path):
        path = self._write_segment(tmp_path, [b"first-payload", b"second"])
        with open(path, "r+b") as handle:
            handle.seek(12)  # inside the first frame
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0xFF]))
        scan = scan_segment(1, path, is_last=True)
        assert scan.status == "corrupt"

    def test_damage_in_non_final_segment_is_corrupt_not_torn(self, tmp_path):
        path = self._write_segment(tmp_path, [b"first", b"second"])
        os.truncate(path, os.path.getsize(path) - 3)
        scan = scan_segment(1, path, is_last=False)
        assert scan.status == "corrupt"

    def test_empty_and_magic_only_segments_are_ok(self, tmp_path):
        path = self._write_segment(tmp_path, [])
        assert scan_segment(1, path, is_last=True).status == "ok"
        empty = tmp_path / "wal-00000002.log"
        empty.write_bytes(b"")
        assert scan_segment(2, str(empty), is_last=True).status == "ok"

    # -- tailing at segment-rotation boundaries (satellite: replication) -- #
    def test_tail_resume_at_exact_rotation_boundary(self, tmp_path):
        """A subscriber parked at the EOF of a segment that then seals must
        resume on the next segment — no skipped and no duplicated record."""
        from repro.replication.feed import frame_payload, read_frames

        wal = WriteAheadLog(str(tmp_path), fsync="always", segment_bytes=64)
        wal.append(b"a" * 48)  # fills segment 1 past the rotation threshold
        chunk = read_frames(str(tmp_path), 1, 8)
        assert [frame_payload(raw) for _, _, raw in chunk.frames] == [b"a" * 48]
        parked = chunk.next  # exactly at segment 1's EOF
        wal.append(b"b" * 48)  # rotation: lands in segment 2
        wal.append(b"c" * 48)  # and segment 3
        wal.close()
        collected = []
        position = parked
        for _ in range(10):
            chunk = read_frames(str(tmp_path), *position)
            assert chunk.status == "ok"
            if not chunk.frames:
                break
            collected.extend(frame_payload(raw) for _, _, raw in chunk.frames)
            position = chunk.next
        assert collected == [b"b" * 48, b"c" * 48]

    def test_tail_mirror_is_byte_identical_across_rotation(self, tmp_path):
        """Chunked shipping across rotations reproduces every segment file
        byte for byte — the invariant replica recovery depends on."""
        from repro.replication.feed import append_mirror_frames, read_frames

        source = tmp_path / "src"
        mirror = tmp_path / "dst"
        wal = WriteAheadLog(str(source), fsync="always", segment_bytes=64)
        for index in range(6):
            wal.append(bytes([65 + index]) * 40)
        wal.close()
        position = (1, 8)
        for _ in range(40):
            chunk = read_frames(str(source), *position, max_bytes=64)
            if not chunk.frames:
                break
            append_mirror_frames(str(mirror), chunk.frames)
            position = chunk.next
        originals = list_segments(str(source))
        mirrored = list_segments(str(mirror))
        # Every record-bearing segment is mirrored byte for byte; only a
        # magic-only tail segment (a rotation that never took a record) may
        # be missing, since there are no frames to ship from it.
        assert [number for number, _ in mirrored] == [
            number for number, _ in originals[: len(mirrored)]
        ]
        for (_, original), (_, copy) in zip(originals, mirrored):
            with open(original, "rb") as left, open(copy, "rb") as right:
                assert left.read() == right.read()
        for _, extra in originals[len(mirrored) :]:
            assert os.path.getsize(extra) == 8  # magic only, no records


# --------------------------------------------------------------------------- #
# Record codec at the WAL boundary (satellite: codec round-trips)
# --------------------------------------------------------------------------- #
class TestRecordCodec:
    def _round_trip(self, tmp_path, payload: bytes) -> bytes:
        wal = WriteAheadLog(str(tmp_path), fsync="always")
        wal.append(payload)
        wal.close()
        number, path = list_segments(str(tmp_path))[0]
        scan = scan_segment(number, path, is_last=True)
        assert scan.status == "ok" and len(scan.payloads) == 1
        return scan.payloads[0]

    def test_update_with_empty_bags_round_trips(self, tmp_path):
        update = Update(relations={"M": Bag()}, deep={})
        kind, decoded = decode_record(
            self._round_trip(tmp_path, encode_update_record(update))
        )
        assert kind == "update"
        assert decoded.relations["M"].is_empty()

    def test_zero_multiplicity_pairs_round_trip(self):
        pairs = [(("a", 1), 0), (("b", 2), 2), (("c", 3), -1)]
        assert decode_pairs(encode_pairs(pairs)) == pairs

    def test_max_depth_nesting_round_trips(self, tmp_path):
        nested = Bag([("leaf",)])
        for depth in range(6):
            nested = Bag([(f"level-{depth}", nested)])
        update = insertions("N", [(1, nested)])
        kind, decoded = decode_record(
            self._round_trip(tmp_path, encode_update_record(update))
        )
        assert kind == "update"
        assert decoded.relations["N"] == update.relations["N"]

    def test_dataset_and_vacuum_records_round_trip(self, tmp_path):
        payload = encode_dataset_record("M", MOVIE_SCHEMA, PAPER_MOVIES)
        kind, (name, schema, rows) = decode_record(self._round_trip(tmp_path, payload))
        assert kind == "dataset" and name == "M"
        assert schema == MOVIE_SCHEMA and list(rows) == list(PAPER_MOVIES)
        assert decode_record(encode_vacuum_record()) == ("vacuum", None)

    def test_unknown_record_type_raises(self):
        with pytest.raises(ValueError):
            decode_record(b"?junk")


# --------------------------------------------------------------------------- #
# Engine: replay-on-open, checkpoints, degradation
# --------------------------------------------------------------------------- #
class TestEngineDurability:
    def test_wal_replay_reproduces_engine_state(self, tmp_path):
        data_dir = str(tmp_path / "db")
        durable = Engine(data_dir=data_dir, fsync="batch")
        _drive(durable)
        expected = engine_state(durable)
        durable.close()

        baseline = Engine()
        _drive(baseline)
        assert state_differences(engine_state(baseline), expected) == []
        baseline.close()

        recovered = Engine(data_dir=data_dir, fsync="batch")
        report = recovered.recovery_report
        assert report is not None and not report.read_only
        assert report.records_replayed > 0
        assert state_differences(expected, engine_state(recovered)) == []
        # The recovered engine is live: applies keep working and persisting.
        recovered.apply(insertions("M", [("Fresh", "Drama", "New")]))
        recovered.close()

    def test_checkpoint_then_tail_replay(self, tmp_path):
        data_dir = str(tmp_path / "db")
        durable = Engine(data_dir=data_dir, fsync="batch")
        _drive(durable)
        written = durable.checkpoint()
        assert written["seq"] == 1
        durable.apply(insertions("M", [("Tail", "Drama", "After")]))
        expected = engine_state(durable)
        durable.close()

        recovered = Engine(data_dir=data_dir, fsync="batch")
        report = recovered.recovery_report
        assert report.checkpoint is not None and report.checkpoint["seq"] == 1
        assert report.records_replayed == 1  # just the post-checkpoint apply
        assert state_differences(expected, engine_state(recovered)) == []
        recovered.close()

    def test_checkpoint_prunes_wal_and_older_checkpoints(self, tmp_path):
        data_dir = str(tmp_path / "db")
        engine = Engine(data_dir=data_dir, fsync="batch")
        _drive(engine)
        engine.checkpoint()
        engine.apply(insertions("M", [("More", "Drama", "Rows")]))
        engine.checkpoint()
        checkpoints = list_checkpoints(os.path.join(data_dir, "checkpoints"))
        assert [seq for seq, _ in checkpoints] == [2]
        loaded, discarded = load_newest_checkpoint(
            os.path.join(data_dir, "checkpoints")
        )
        assert loaded.seq == 2 and discarded == []
        segments = list_segments(os.path.join(data_dir, "wal"))
        assert all(
            number >= loaded.manifest["wal_start_segment"] for number, _ in segments
        )
        engine.close()

    def test_torn_tail_truncated_and_engine_stays_writable(self, tmp_path):
        data_dir = str(tmp_path / "db")
        engine = Engine(data_dir=data_dir, fsync="always")
        _drive(engine)
        engine.close()
        wal_dir = os.path.join(data_dir, "wal")
        number, last = list_segments(wal_dir)[-1]
        os.truncate(last, os.path.getsize(last) - 3)

        recovered = Engine(data_dir=data_dir, fsync="always")
        report = recovered.recovery_report
        assert not report.read_only
        assert [entry["path"] for entry in report.torn] == [last]
        # The torn suffix is one update short of the full run.
        baseline = Engine()
        _drive(baseline)
        assert recovered.state_version == baseline.state_version - 1
        recovered.apply(insertions("M", [("New", "Drama", "Write")]))
        baseline.close()
        recovered.close()

    def test_corrupt_middle_segment_quarantines_and_degrades_read_only(
        self, tmp_path
    ):
        data_dir = str(tmp_path / "db")
        engine = Engine(data_dir=data_dir, fsync="always")
        engine.dataset("M", MOVIE_SCHEMA, rows=PAPER_MOVIES)
        engine.view("related", related_query(), strategy="nested")
        engine._durability._wal.rotate()
        for update in movie_update_stream(2, batch_size=1, existing=PAPER_MOVIES):
            engine.apply(update)
        engine.close()
        wal_dir = os.path.join(data_dir, "wal")
        assert len(list_segments(wal_dir)) >= 2
        _, first = list_segments(wal_dir)[0]
        with open(first, "r+b") as handle:
            handle.seek(12)
            byte = handle.read(1)
            handle.seek(12)
            handle.write(bytes([byte[0] ^ 0xFF]))

        recovered = Engine(data_dir=data_dir, fsync="always")
        assert recovered.read_only is not None
        report = recovered.recovery_report
        assert report.read_only and report.quarantined
        assert os.path.isdir(os.path.join(data_dir, "quarantine"))
        # Reads still serve whatever state was recoverable...
        assert recovered.dataset_names() == ()
        # ...but every mutation is refused, loudly.
        with pytest.raises(WorkloadError, match="read-only"):
            recovered.apply(insertions("M", [("X", "Y", "Z")]))
        recovered.close()

    def test_checkpoint_refused_on_read_only_engine(self, tmp_path):
        data_dir = _write_corrupted_first_segment(tmp_path)
        recovered = Engine(data_dir=data_dir, fsync="always")
        assert recovered.read_only is not None
        surviving = list_segments(os.path.join(data_dir, "wal"))
        # A checkpoint here would claim WAL coverage from segment 1 and
        # prune/double-replay the surviving valid segments on the next
        # open — it must be refused outright.
        with pytest.raises(EngineError, match="WAL is not open"):
            recovered.checkpoint()
        assert list_checkpoints(os.path.join(data_dir, "checkpoints")) == []
        assert list_segments(os.path.join(data_dir, "wal")) == surviving
        recovered.close()

    def test_stale_capture_cannot_become_newest_checkpoint(self, tmp_path):
        data_dir = str(tmp_path / "db")
        engine = Engine(data_dir=data_dir, fsync="batch")
        _drive(engine)
        older = engine.checkpoint_capture()
        engine.apply(insertions("M", [("Tail", "Drama", "After")]))
        newer = engine.checkpoint_capture()
        written = engine.write_checkpoint(newer)
        # Writing the older capture now would make the newest checkpoint
        # the OLDER state, whose required WAL tail the newer checkpoint's
        # prune just deleted — acknowledged writes would vanish on the
        # next recovery.
        with pytest.raises(EngineError, match="stale"):
            engine.write_checkpoint(older)
        checkpoints = list_checkpoints(os.path.join(data_dir, "checkpoints"))
        assert [seq for seq, _ in checkpoints] == [written["seq"]]
        expected = engine_state(engine)
        engine.close()
        recovered = Engine(data_dir=data_dir, fsync="batch")
        assert state_differences(expected, engine_state(recovered)) == []
        recovered.close()

    def test_recovery_report_round_trips_to_dict(self, tmp_path):
        data_dir = str(tmp_path / "db")
        engine = Engine(data_dir=data_dir, fsync="batch")
        _drive(engine, updates=1)
        engine.close()
        recovered = Engine(data_dir=data_dir, fsync="batch")
        payload = recovered.recovery_report.to_dict()
        assert payload["data_dir"] == data_dir
        assert payload["records_replayed"] > 0
        assert payload["read_only"] is False
        assert payload["state_version"] == recovered.state_version
        describe = recovered.durability_report()
        assert describe["policy"] == "batch"
        assert describe["wal"]["segment"] >= 1
        recovered.close()


# --------------------------------------------------------------------------- #
# Differential crash recovery
# --------------------------------------------------------------------------- #
class TestFaultDifferential:
    @pytest.mark.parametrize("crash_at", CRASH_POINTS)
    def test_every_crash_point_converges(self, tmp_path, crash_at):
        ops = build_ops("nested", movies=10, updates=3)
        baseline = Engine()
        for op in ops:
            apply_op(baseline, op)
        expected = engine_state(baseline)
        baseline.close()
        recovered, crashed, _ = crash_and_recover(
            ops, str(tmp_path / "db"), crash_at=crash_at, fsync="batch", sync_each=True
        )
        assert crashed, f"{crash_at} must fire at offset 0"
        assert state_differences(expected, engine_state(recovered)) == []
        recovered.close()

    def test_battery_across_strategies(self):
        assert (
            run_battery(
                strategies=("naive", "classic", "recursive"),
                crash_points=("wal.mid_record", "wal.post_fsync"),
                afters=(0, 1),
                movies=8,
                updates=2,
                fsync="batch",
            )
            == []
        )

    def test_rpo_of_always_policy(self, tmp_path):
        ops = build_ops("classic", movies=8, updates=3)
        recovered, crashed, survived = crash_and_recover(
            ops, str(tmp_path / "db"), crash_at="wal.post_fsync", after=1, fsync="always"
        )
        assert crashed and survived == 2  # both fsynced ops survived
        recovered.close()
        recovered, crashed, survived = crash_and_recover(
            ops, str(tmp_path / "db2"), crash_at="wal.pre_fsync", after=1, fsync="always"
        )
        assert crashed and survived == 1  # the unsynced op did not
        recovered.close()

    def test_injector_validates_its_arguments(self):
        with pytest.raises(ValueError):
            FaultInjector("wal.nonsense")
        with pytest.raises(ValueError):
            FaultInjector("wal.mid_record", after=-1)
        injector = FaultInjector("wal.mid_record", after=1)
        assert not injector.check("wal.mid_record")
        assert injector.check("wal.mid_record")
        assert not injector.check("wal.mid_record")  # fires exactly once
        assert isinstance(InjectedCrash("wal.mid_record"), RuntimeError)


# --------------------------------------------------------------------------- #
# Lifecycle (satellite: idempotent close, safe under concurrent applies)
# --------------------------------------------------------------------------- #
class TestLifecycle:
    def test_close_is_idempotent(self, tmp_path):
        engine = Engine(data_dir=str(tmp_path / "db"))
        _drive(engine, updates=1)
        engine.close()
        engine.close()
        assert engine.closed

    def test_close_concurrent_with_in_flight_applies(self, tmp_path):
        engine = Engine(data_dir=str(tmp_path / "db"), fsync="batch")
        engine.dataset("M", MOVIE_SCHEMA, rows=PAPER_MOVIES)
        engine.view("related", related_query(), strategy="nested")
        updates = list(movie_update_stream(40, batch_size=1, existing=PAPER_MOVIES))
        unexpected = []

        def writer():
            for update in updates:
                try:
                    engine.apply(update)
                except WorkloadError:
                    return  # the close won the race — the documented outcome
                except Exception as error:  # noqa: BLE001
                    unexpected.append(error)
                    return

        threads = [threading.Thread(target=writer) for _ in range(3)]
        for thread in threads:
            thread.start()
        time.sleep(0.005)
        engine.close()
        engine.close()
        for thread in threads:
            thread.join(10.0)
        assert unexpected == []
        assert engine.closed
        # Whatever prefix of applies won the race was logged atomically:
        # the reopened engine must not be torn mid-apply.
        recovered = Engine(data_dir=str(tmp_path / "db"), fsync="batch")
        assert not recovered.recovery_report.read_only
        recovered.close()

    def test_in_memory_engine_is_unchanged_without_data_dir(self, monkeypatch):
        monkeypatch.setenv("REPRO_FSYNC", "off")
        engine = Engine()
        assert not engine.durable
        assert engine.recovery_report is None
        assert engine.durability_report() is None
        _drive(engine, updates=2)
        baseline = Engine()
        _drive(baseline, updates=2)
        assert state_differences(engine_state(baseline), engine_state(engine)) == []
        engine.sync_wal()  # no-op, not an error
        from repro.errors import EngineError

        with pytest.raises(EngineError, match="data_dir"):
            engine.checkpoint()
        engine.close()
        baseline.close()


# --------------------------------------------------------------------------- #
# Serving layer: durable tenants
# --------------------------------------------------------------------------- #
def _wait_recovered(api: APIClient, tenant: str, deadline: float = 10.0):
    server_client = ServerClient(api)
    end = time.time() + deadline
    while time.time() < end:
        health = server_client.health()
        if health["status"] == "ok" and tenant in health["tenants"]:
            return health
        time.sleep(0.02)
    raise AssertionError(f"tenant {tenant!r} never finished recovering")


class TestServeDurability:
    def test_restart_recovers_tenants_and_checkpoint_route(self, tmp_path):
        data_dir = str(tmp_path / "serve")
        with ReproServer(ServerConfig(port=0, data_dir=data_dir, fsync="batch")) as server:
            api = APIClient(server.url)
            datasets = DatasetsClient(api, tenant="t1")
            updates = UpdatesClient(api, tenant="t1")
            views = ViewsClient(api, tenant="t1")
            datasets.create(
                "M", ["name", "gen", "dir"], rows=[["Drive", "Drama", "Refn"]]
            )
            views.create(
                "dramas",
                {
                    "from": "M",
                    "var": "m",
                    "where": ["eq", ["field", "m", "gen"], ["const", "Drama"]],
                    "select": [["field", "m", "name"]],
                },
            )
            written = updates.checkpoint()
            assert written["seq"] == 1 and written["tenant"] == "t1"
            updates.insert("M", [["Her", "Drama", "Jonze"]])
            before = views.show("dramas")
            server.close(drain=True)

        with ReproServer(ServerConfig(port=0, data_dir=data_dir, fsync="batch")) as server:
            api = APIClient(server.url)
            health = _wait_recovered(api, "t1")
            assert health["recovering"] == []
            after = ViewsClient(api, tenant="t1").show("dramas")
            assert after["version"] == before["version"]
            assert sorted(map(str, after["pairs"])) == sorted(map(str, before["pairs"]))
            stats = ServerClient(api).stats()
            durability = stats["tenants"]["t1"]["durability"]
            assert durability["policy"] == "batch"
            assert durability["recovery"]["read_only"] is False

    def test_checkpoint_route_without_data_dir_is_an_error(self):
        with ReproServer(ServerConfig(port=0)) as server:
            api = APIClient(server.url, max_retries=0)
            UpdatesClient(api, tenant="t").insert  # touch: create tenant lazily
            DatasetsClient(api, tenant="t").create("M", ["a"])
            with pytest.raises(APIError) as excinfo:
                UpdatesClient(api, tenant="t").checkpoint()
            assert excinfo.value.status == 400
            assert "not durable" in excinfo.value.message

    def test_checkpoint_refused_for_read_only_tenant(self, tmp_path):
        data_dir = _write_corrupted_first_segment(tmp_path, "t")
        session = TenantSession(
            "t", engine_options={"data_dir": data_dir, "fsync": "always"}
        )
        try:
            assert session.engine.read_only is not None
            with pytest.raises(ProtocolError, match="read-only"):
                session.checkpoint()
        finally:
            session.close(drain=True)

    def test_recover_existing_survives_damaged_tenant(self, tmp_path):
        data_dir = str(tmp_path / "serve")
        good = Engine(data_dir=os.path.join(data_dir, "good"), fsync="batch")
        good.dataset("M", MOVIE_SCHEMA, rows=PAPER_MOVIES)
        good.close()
        # A tenant whose wal path is a *file* makes the engine open raise
        # outright (not merely degrade to read-only): one damaged tenant
        # must not kill the recovery pass or strand the rest in the
        # recovering (permanent-503) state.
        os.makedirs(os.path.join(data_dir, "bad"))
        with open(os.path.join(data_dir, "bad", "wal"), "wb") as handle:
            handle.write(b"not a directory")
        manager = SessionManager(data_dir=data_dir, fsync="batch")
        try:
            assert manager.recover_existing() == ("good",)
            assert manager.recovering() == ()
            assert "bad" in manager.recovery_failures()
        finally:
            manager.close_all(drain=True)

    def test_recovering_tenant_answers_503_with_retry_after(self):
        with ReproServer(ServerConfig(port=0)) as server:
            server.sessions._recovering.add("warm")
            api = APIClient(server.url, max_retries=0)
            health = ServerClient(api).health()
            assert health["status"] == "recovering"
            assert health["recovering"] == ["warm"]
            with pytest.raises(APIError) as excinfo:
                ViewsClient(api, tenant="warm").list()
            assert excinfo.value.status == 503
            assert excinfo.value.code == "recovering"
            server.sessions._recovering.discard("warm")

    def test_client_retries_503_with_retry_after(self):
        with ReproServer(ServerConfig(port=0)) as server:
            server.sessions._recovering.add("warm")
            waits = []

            def fake_sleep(seconds: float) -> None:
                waits.append(seconds)
                server.sessions._recovering.discard("warm")

            api = APIClient(server.url, max_retries=3, sleep=fake_sleep)
            payload = ViewsClient(api, tenant="warm").list()
            assert payload["views"] == []
            assert api.retries_performed == 1
            assert waits and waits[0] > 0

    def test_bare_503_is_not_retried(self):
        client = APIClient("http://127.0.0.1:1", max_retries=0)
        # A connection failure with retries off surfaces immediately — and
        # the 503-retry arm requires the Retry-After header, checked via the
        # server tests above; here we assert the plumbing never spins.
        with pytest.raises(APIError):
            client.get("health")
        assert client.retries_performed == 0

    def test_bad_tenant_names_rejected(self):
        with ReproServer(ServerConfig(port=0)) as server:
            api = APIClient(server.url, max_retries=0)
            # The handler splits paths without unquoting, so traversal must
            # be rejected on the literal segment: dots and backslashes.
            from repro.serve import ProtocolError

            for name in ("..", ".", "a\\b", ""):
                with pytest.raises(ProtocolError, match="bad tenant name"):
                    server.sessions.get(name)
            with pytest.raises(APIError) as excinfo:
                api.get("v1/../views")
            assert excinfo.value.status in (400, 404)
