"""The client SDK's retry policy and the ``repro-cli`` command surface.

``APIClient`` is tested against small purpose-built HTTP stubs (429 with
``Retry-After``, flaky sockets) with an injectable ``sleep`` so backoff is
observable without wall-clock waits; the CLI commands run against a live
:class:`~repro.serve.ReproServer` through ``main(argv)`` — exactly the
console-script path — with output captured via ``capsys``.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.client._compat import HAVE_RICH, Console, Table
from repro.client.api import APIClient, APIError
from repro.client.cli import main
from repro.serve import ReproServer, ServerConfig


# --------------------------------------------------------------------------- #
# Stub servers
# --------------------------------------------------------------------------- #
class _ScriptedHandler(BaseHTTPRequestHandler):
    """Answers from the server's ``script`` list: one entry per request."""

    def log_message(self, format, *args):  # noqa: A002
        pass

    def _answer(self) -> None:
        script = self.server.script  # type: ignore[attr-defined]
        status, headers, payload = script.pop(0) if script else (200, {}, {"ok": True})
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):  # noqa: N802
        self._answer()

    def do_POST(self):  # noqa: N802
        length = int(self.headers.get("Content-Length") or 0)
        if length:
            self.rfile.read(length)
        self._answer()


@pytest.fixture
def scripted_server():
    httpd = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
    httpd.script = []
    thread = threading.Thread(target=httpd.serve_forever, daemon=True)
    thread.start()
    try:
        yield httpd
    finally:
        httpd.shutdown()
        httpd.server_close()


def _url(httpd) -> str:
    host, port = httpd.server_address[:2]
    return f"http://{host}:{port}"


# --------------------------------------------------------------------------- #
# APIClient retry policy
# --------------------------------------------------------------------------- #
class TestAPIClientRetries:
    def test_honors_retry_after_on_429(self, scripted_server):
        error_body = {"error": {"code": "backpressure", "message": "full"}}
        scripted_server.script = [
            (429, {"Retry-After": "0.125"}, error_body),
            (429, {"Retry-After": "0.250"}, error_body),
            (200, {}, {"ok": True}),
        ]
        naps = []
        api = APIClient(_url(scripted_server), max_retries=5, sleep=naps.append)
        assert api.get("anything") == {"ok": True}
        assert naps == [0.125, 0.25]
        assert api.retries_performed == 2

    def test_retry_after_capped(self, scripted_server):
        error_body = {"error": {"code": "backpressure", "message": "full"}}
        scripted_server.script = [
            (429, {"Retry-After": "3600"}, error_body),
            (200, {}, {"ok": True}),
        ]
        naps = []
        api = APIClient(
            _url(scripted_server), max_retries=2, max_retry_after=0.5, sleep=naps.append
        )
        assert api.get("anything") == {"ok": True}
        assert naps == [0.5]

    def test_429_exhaustion_raises_structured_error(self, scripted_server):
        error_body = {"error": {"code": "backpressure", "message": "still full"}}
        scripted_server.script = [(429, {"Retry-After": "0.01"}, error_body)] * 3
        api = APIClient(_url(scripted_server), max_retries=2, sleep=lambda _: None)
        with pytest.raises(APIError) as info:
            api.get("anything")
        assert info.value.status == 429
        assert info.value.code == "backpressure"
        assert "still full" in info.value.message

    def test_non_retryable_errors_surface_immediately(self, scripted_server):
        scripted_server.script = [
            (400, {}, {"error": {"code": "bad_request", "message": "nope"}})
        ]
        naps = []
        api = APIClient(_url(scripted_server), max_retries=5, sleep=naps.append)
        with pytest.raises(APIError) as info:
            api.get("anything")
        assert (info.value.status, info.value.code) == (400, "bad_request")
        assert naps == []

    def test_connection_errors_back_off_exponentially(self):
        # A bound-then-closed port: connections are refused deterministically.
        probe = ThreadingHTTPServer(("127.0.0.1", 0), _ScriptedHandler)
        dead_url = _url(probe)
        probe.server_close()

        naps = []
        api = APIClient(dead_url, max_retries=4, backoff_base=0.1, sleep=naps.append)
        with pytest.raises(APIError) as info:
            api.get("anything")
        assert info.value.code == "connection"
        assert len(naps) == 4
        for attempt, nap in enumerate(naps):
            ideal = 0.1 * (2**attempt)
            assert 0.75 * ideal <= nap <= 1.25 * ideal  # ±25% jitter
        assert naps[-1] > naps[0]

    def test_recovers_when_server_comes_back(self, scripted_server):
        # First attempt hits a dead port — then we "restart" by pointing the
        # same client at the live stub (simulating the socket recovering).
        scripted_server.script = [(200, {}, {"ok": 1})]
        api = APIClient(_url(scripted_server), max_retries=3, sleep=lambda _: None)
        assert api.get("x") == {"ok": 1}


# --------------------------------------------------------------------------- #
# CLI against a live server
# --------------------------------------------------------------------------- #
@pytest.fixture
def live():
    with ReproServer(ServerConfig(port=0)) as server:
        yield server


def _run(server, *args: str) -> int:
    return main(["--server", server.url, "--tenant", "cli", *args])


def _seed_cli(server) -> None:
    assert (
        _run(
            server,
            "datasets",
            "create",
            "M",
            "--fields",
            "name,gen,dir",
            "--rows",
            json.dumps([["Drive", "Drama", "Refn"], ["Skyfall", "Action", "Mendes"]]),
        )
        == 0
    )
    query = {
        "from": "M",
        "var": "m",
        "where": ["eq", ["field", "m", "gen"], ["const", "Drama"]],
        "select": [["field", "m", "name"]],
    }
    assert _run(server, "views", "create", "dramas", "--query", json.dumps(query)) == 0


class TestCLI:
    def test_health_and_stats(self, live, capsys):
        assert _run(live, "health") == 0
        assert "status=ok" in capsys.readouterr().out
        assert _run(live, "stats") == 0
        assert "Tenants" in capsys.readouterr().out

    def test_full_cycle_renders_tables(self, live, capsys):
        _seed_cli(live)
        out = capsys.readouterr().out
        assert "created dataset 'M'" in out
        assert "created view 'dramas'" in out

        rc = _run(
            live,
            "apply",
            "--data",
            json.dumps({"M": {"rows": [["Jarhead", "Drama", "Mendes"]]}}),
        )
        assert rc == 0
        assert "applied 1 update(s)" in capsys.readouterr().out

        assert _run(live, "views", "show", "dramas") == 0
        out = capsys.readouterr().out
        assert "Jarhead" in out and "Drive" in out and "Skyfall" not in out

        assert _run(live, "datasets", "list") == 0
        assert "M" in capsys.readouterr().out
        assert _run(live, "views", "list") == 0
        assert "dramas" in capsys.readouterr().out

    def test_explain_and_indexes(self, live, capsys):
        _seed_cli(live)
        capsys.readouterr()
        assert _run(live, "views", "explain", "dramas") == 0
        out = capsys.readouterr().out
        assert "strategy=" in out and "Candidates" in out
        assert _run(live, "views", "indexes", "dramas") == 0
        assert "Indexes" in capsys.readouterr().out

    def test_watch_polls_until_count(self, live, capsys):
        _seed_cli(live)
        capsys.readouterr()
        assert _run(live, "watch", "dramas", "--interval", "0.01", "--count", "3") == 0
        out = capsys.readouterr().out
        # First poll prints the result; unchanged polls print nothing.
        assert out.count("@ version") == 1

    def test_async_apply_reports_queue_depth(self, live, capsys):
        _seed_cli(live)
        capsys.readouterr()
        rc = _run(
            live,
            "apply",
            "--mode",
            "async",
            "--data",
            json.dumps({"M": {"rows": [["X", "Y", "Z"]]}}),
        )
        assert rc == 0
        assert "accepted 1 update(s)" in capsys.readouterr().out

    def test_errors_exit_nonzero(self, live, capsys):
        assert _run(live, "views", "show", "ghost") == 1
        assert "error:" in capsys.readouterr().err
        assert _run(live, "apply", "--data", "not json") == 1
        assert _run(live, "apply") == 1  # neither --data nor --file
        assert (
            _run(live, "datasets", "create", "M2") == 1
        )  # missing --fields

    def test_vacuum(self, live, capsys):
        _seed_cli(live)
        capsys.readouterr()
        assert _run(live, "vacuum") == 0
        assert "vacuum at version" in capsys.readouterr().out


# --------------------------------------------------------------------------- #
# The rich-optional rendering shim
# --------------------------------------------------------------------------- #
class TestCompatRendering:
    def test_plain_table_renders_columns_and_rows(self):
        if HAVE_RICH:
            pytest.skip("rich is installed; the fallback is not in use")
        table = Table(title="T")
        table.add_column("name")
        table.add_column("n")
        table.add_row("alpha", 1)
        table.add_row("beta", 22)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "T"
        assert lines[1].split() == ["name", "n"]
        assert lines[3].split() == ["alpha", "1"]
        assert lines[4].split() == ["beta", "22"]

    def test_console_prints_tables_and_text(self, capsys):
        console = Console()
        console.print("hello")
        table = Table()
        table.add_row("x")
        console.print(table)
        out = capsys.readouterr().out
        assert "hello" in out and "x" in out
