"""Tests for the flat relational algebra, its delta rules and flat IVM (Appendix A.1)."""

import pytest

from repro.bag import Bag, EMPTY_BAG
from repro.errors import TypeCheckError
from repro.relational import (
    BaseRel,
    CrossProduct,
    DeltaRel,
    NegateRel,
    Project,
    RelSchema,
    Rename,
    RelationalDatabase,
    RelationalIVMView,
    RelationalNaiveView,
    Select,
    ThetaJoin,
    UnionAll,
    relational_delta,
    relational_sources,
)
from repro.workloads import doz_query

MOVIES = RelSchema(("movie", "genre"))
SHOWS = RelSchema(("movie", "loc", "time"))

movies_instance = Bag([("Drive", "Drama"), ("Skyfall", "Action"), ("Melancholia", "Drama")])
shows_instance = Bag(
    [
        ("Drive", "Oz", "20:00"),
        ("Skyfall", "Oz", "21:00"),
        ("Melancholia", "Kansas", "19:00"),
    ]
)
DB = {"Mflat": movies_instance, "Sh": shows_instance}


class TestSchemas:
    def test_duplicate_columns_rejected(self):
        with pytest.raises(TypeCheckError):
            RelSchema(("a", "a"))

    def test_index_of_unknown_column(self):
        with pytest.raises(TypeCheckError):
            MOVIES.index_of("nope")

    def test_concat_disambiguates(self):
        merged = MOVIES.concat(RelSchema(("movie", "rating")))
        assert merged.columns == ("movie", "genre", "movie_r", "rating")


class TestOperators:
    def test_base_and_select(self):
        dramas = Select(BaseRel("Mflat", MOVIES), lambda row: row["genre"] == "Drama")
        assert dramas.evaluate(DB) == Bag([("Drive", "Drama"), ("Melancholia", "Drama")])

    def test_project_keeps_duplicates_as_multiplicities(self):
        genres = Project(BaseRel("Mflat", MOVIES), ("genre",))
        assert genres.evaluate(DB).multiplicity(("Drama",)) == 2

    def test_cross_product(self):
        product = CrossProduct(BaseRel("Mflat", MOVIES), BaseRel("Sh", SHOWS))
        assert product.evaluate(DB).cardinality() == 9
        assert len(product.schema()) == 5

    def test_theta_join(self):
        joined = ThetaJoin(BaseRel("Sh", SHOWS), BaseRel("Mflat", MOVIES), (("movie", "movie"),))
        result = joined.evaluate(DB)
        assert result.cardinality() == 3
        assert ("Drive", "Oz", "20:00", "Drive", "Drama") in result

    def test_union_and_negate(self):
        rel = BaseRel("Mflat", MOVIES)
        assert UnionAll(rel, NegateRel(rel)).evaluate(DB) == EMPTY_BAG

    def test_union_arity_mismatch_rejected(self):
        with pytest.raises(TypeCheckError):
            UnionAll(BaseRel("Mflat", MOVIES), BaseRel("Sh", SHOWS)).schema()

    def test_rename(self):
        renamed = Rename(BaseRel("Mflat", MOVIES), (("genre", "g"),))
        assert renamed.schema().columns == ("movie", "g")
        assert renamed.evaluate(DB) == movies_instance

    def test_delta_rel_reads_update_symbols(self):
        delta = DeltaRel("Mflat", MOVIES)
        assert delta.evaluate(DB) == EMPTY_BAG
        assert delta.evaluate(DB, {("Mflat", 1): Bag([("New", "Drama")])}) == Bag([("New", "Drama")])

    def test_doz_query_of_example_8(self):
        assert doz_query().evaluate(DB) == Bag([("Drive",)])

    def test_builder_sugar(self):
        query = (
            BaseRel("Sh", SHOWS)
            .select(lambda row: row["loc"] == "Oz")
            .join(BaseRel("Mflat", MOVIES), on=(("movie", "movie"),))
            .project(("movie", "genre"))
        )
        assert query.evaluate(DB).cardinality() == 2


class TestFlatDeltaRules:
    def test_sources(self):
        assert relational_sources(doz_query()) == {"Mflat", "Sh"}

    def test_delta_satisfies_equation_5(self):
        query = doz_query()
        delta_query = relational_delta(query)
        updates = {
            "Sh": Bag([("Melancholia", "Oz", "22:00")]),
            "Mflat": Bag([("Jarhead", "Drama")]),
        }
        post = {name: DB[name].union(updates.get(name, EMPTY_BAG)) for name in DB}
        direct = query.evaluate(post)
        incremental = query.evaluate(DB).union(
            delta_query.evaluate(DB, {(name, 1): bag for name, bag in updates.items()})
        )
        assert direct == incremental

    def test_delta_with_deletions(self):
        query = doz_query()
        delta_query = relational_delta(query)
        updates = {"Sh": Bag.from_pairs([(("Drive", "Oz", "20:00"), -1)])}
        post = {"Mflat": DB["Mflat"], "Sh": DB["Sh"].union(updates["Sh"])}
        direct = query.evaluate(post)
        incremental = query.evaluate(DB).union(
            delta_query.evaluate(DB, {("Sh", 1): updates["Sh"]})
        )
        assert direct == incremental

    def test_delta_of_untargeted_expression_is_empty(self):
        query = doz_query()
        delta_query = relational_delta(query, targets=["Other"])
        assert delta_query.evaluate(DB, {("Other", 1): Bag([("x",)])}) == EMPTY_BAG


class TestFlatIVMViews:
    def test_ivm_matches_naive(self):
        database = RelationalDatabase()
        database.register("Mflat", MOVIES, movies_instance)
        database.register("Sh", SHOWS, shows_instance)
        query = doz_query()
        naive = RelationalNaiveView(query, database)
        ivm = RelationalIVMView(query, database)
        database.apply_update({"Sh": Bag([("Melancholia", "Oz", "23:00")])})
        database.apply_update({"Mflat": Bag([("Jarhead", "Drama")])})
        database.apply_update({"Sh": Bag.from_pairs([(("Drive", "Oz", "20:00"), -1)])})
        assert ivm.result() == naive.result()

    def test_ivm_exposes_delta_expression(self):
        database = RelationalDatabase()
        database.register("Mflat", MOVIES, movies_instance)
        database.register("Sh", SHOWS, shows_instance)
        ivm = RelationalIVMView(doz_query(), database)
        assert ivm.delta_expr is not None
        assert ivm.stats.init_operations >= 0
