"""Cost-driven strategy planning and the pluggable backend registry."""

from __future__ import annotations

import pytest

from repro.engine import (
    BackendRegistry,
    BackendSpec,
    DEFAULT_REGISTRY,
    Engine,
    backend_names,
    plan_view,
)
from repro.engine.planner import PlanningInputs
from repro.errors import EngineError
from repro.ivm.naive import NaiveView
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.types import BASE, bag_of
from repro.workloads import (
    MOVIE_SCHEMA,
    bag_of_bags_engine,
    generate_movies,
    movies_engine,
    related_query,
)


def drama_filter():
    movies = ast.Relation("M", MOVIE_SCHEMA)
    return build.filter_query(
        movies, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x"
    )


def selfjoin_query():
    relation = ast.Relation("R", bag_of(bag_of(BASE)))
    return ast.Product((ast.Flatten(relation), ast.Flatten(relation)))


# --------------------------------------------------------------------------- #
# Auto planning: the cost model picks different backends per view
# --------------------------------------------------------------------------- #
def test_auto_selects_different_backends_per_view():
    """Acceptance: `strategy="auto"` routes distinct views to distinct engines."""
    engine = movies_engine(generate_movies(50))
    dramas = engine.view("dramas", drama_filter(), strategy="auto")
    related = engine.view("related", related_query(), strategy="auto")

    selfjoin_engine = bag_of_bags_engine(20, 4)
    selfjoin = selfjoin_engine.view("selfjoin", selfjoin_query(), strategy="auto")

    assert dramas.strategy == "classic"
    assert related.strategy == "nested"
    assert selfjoin.strategy == "recursive"
    assert len({dramas.strategy, related.strategy, selfjoin.strategy}) == 3


def test_auto_falls_back_to_naive_when_updates_dominate():
    # d ≫ n: re-evaluation is cheaper than processing a huge delta.
    engine = movies_engine(generate_movies(5), expected_update_size=500)
    view = engine.view("dramas", drama_filter(), strategy="auto")
    assert view.strategy == "naive"
    plan = engine.explain(view)
    assert "naive" in plan.reason


def test_explain_reports_cost_estimates_behind_the_choice():
    engine = movies_engine(generate_movies(50))
    view = engine.view("dramas", drama_filter(), strategy="auto")
    plan = engine.explain("dramas")

    assert plan.strategy == "classic"
    assert plan.requested == "auto"
    naive = plan.estimate_for("naive")
    chosen = plan.chosen_estimate
    assert naive is not None and naive.total is not None
    assert chosen is not None and chosen.total is not None
    assert chosen.total < naive.total
    # The classic/recursive/nested fragments are all eligible and estimated.
    for name in ("naive", "classic", "recursive", "nested"):
        assert plan.estimate_for(name) is not None
    # Numbers and the delta query show up in the rendered explanation.
    text = plan.render()
    assert "tcost=" in text and "total=" in text
    assert "delta query" in text
    assert str(chosen.total) in plan.reason


def test_nested_view_planning_marks_fragment_violations():
    engine = movies_engine(generate_movies(30))
    plan = engine.view("related", related_query(), strategy="auto").plan
    classic = plan.estimate_for("classic")
    recursive = plan.estimate_for("recursive")
    assert classic is not None and not classic.eligible
    assert recursive is not None and not recursive.eligible
    assert "shredding" in classic.reason
    nested = plan.estimate_for("nested")
    assert nested is not None and nested.eligible and nested.total is not None


def test_explicit_strategy_still_records_estimates():
    engine = movies_engine(generate_movies(20))
    view = engine.view("dramas", drama_filter(), strategy="naive")
    plan = view.plan
    assert plan.strategy == "naive"
    assert plan.requested == "naive"
    assert plan.reason == "explicitly requested"
    assert plan.estimate_for("classic").total is not None


def test_recursive_choice_reflects_materializations():
    engine = bag_of_bags_engine(20, 4)
    plan = engine.view("selfjoin", selfjoin_query(), strategy="auto").plan
    chosen = plan.chosen_estimate
    assert plan.strategy == "recursive"
    assert "materializes 1" in chosen.reason
    # Recursive wins precisely because it stops re-scanning the base relation.
    classic = plan.estimate_for("classic")
    assert chosen.scan_cost == 0
    assert classic.scan_cost > 0
    assert "residual delta" in plan.artifacts


def test_plan_view_validates_update_size():
    engine = movies_engine(generate_movies(5))
    with pytest.raises(EngineError):
        plan_view(drama_filter(), engine.database, expected_update_size=0)


def test_planning_inputs_targets_default_to_referenced_relations():
    engine = movies_engine(generate_movies(5))
    inputs = PlanningInputs(drama_filter(), engine.database)
    assert inputs.targets == ("M",)
    context = inputs.base_context()
    assert ("M", 1) in context.deltas
    assert context.deltas[("M", 1)].cardinality == 1


# --------------------------------------------------------------------------- #
# Registry pluggability
# --------------------------------------------------------------------------- #
def test_builtin_backends_registered():
    assert backend_names() == ("naive", "classic", "recursive", "nested")


def test_custom_backend_pluggable_without_touching_the_facade():
    registry = DEFAULT_REGISTRY.copy()
    calls = []

    def build_logged(query, database, targets=None):
        calls.append(query)
        return NaiveView(query, database)

    registry.register(
        BackendSpec(
            name="logged-naive",
            description="naive with call logging (test backend)",
            build=build_logged,
        )
    )
    engine = Engine(registry=registry)
    engine.dataset("M", MOVIE_SCHEMA, generate_movies(5))
    view = engine.view("dramas", drama_filter(), strategy="logged-naive")
    assert view.strategy == "logged-naive"
    assert len(calls) == 1
    engine.insert("M", [("Heat", "Crime", "Mann")])
    assert view.stats.updates_applied == 1
    # Backends without an estimator are skipped by auto but still listed.
    estimate = view.plan.estimate_for("logged-naive")
    assert estimate is not None and estimate.total is None
    assert "no cost estimator" in estimate.reason
    # The default registry is untouched.
    assert "logged-naive" not in DEFAULT_REGISTRY


def test_registry_duplicate_and_lookup_errors():
    registry = BackendRegistry()
    spec = BackendSpec(name="x", description="", build=lambda *a, **k: None)
    registry.register(spec)
    with pytest.raises(EngineError):
        registry.register(spec)
    registry.register(spec, replace=True)
    with pytest.raises(EngineError):
        registry.get("missing")
    registry.unregister("x")
    assert "x" not in registry
