"""Unit tests for pretty printing and generic traversal utilities."""

import pytest

from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.pretty import render
from repro.nrc.traverse import count_nodes, iter_subexpressions, map_expr, replace_subexpressions
from repro.nrc.types import BASE, bag_of, tuple_of

MOVIE = tuple_of(BASE, BASE, BASE)
M = ast.Relation("M", bag_of(MOVIE))


class TestPrettyPrinter:
    def test_renders_paper_notation(self, related):
        text = render(related)
        assert "for m in M" in text
        assert "sng(" in text
        assert "where" in text

    def test_renders_where_sugar(self):
        query = build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x")
        assert "where x.1 == 'Drama'" in render(query)

    def test_renders_delta_symbols(self):
        assert render(ast.DeltaRelation("M", bag_of(MOVIE), 1)) == "ΔM"
        assert render(ast.DeltaRelation("M", bag_of(MOVIE), 2)) == "Δ'M"

    def test_renders_operators(self):
        assert render(ast.Union((M, M))) == "(M ⊎ M)"
        assert render(ast.Product((M, M))) == "(M × M)"
        assert render(ast.Negate(M)) == "⊖(M)"
        assert render(ast.Empty()) == "∅"
        assert render(ast.Flatten(M)) == "flatten(M)"

    def test_renders_label_constructs(self):
        assert render(ast.InLabel("ι0", ("m",))) == "inL_ι0(m)"
        dictionary = ast.DictSingleton("ι0", ("m",), ast.SngProj("m", (0,)))
        assert render(dictionary) == "[(ι0, ⟨m⟩) ↦ sng(π_0(m))]"
        lookup = ast.DictLookup(ast.DictVar("D", bag_of(BASE)), "r", (1,))
        assert render(lookup) == "D(r.1)"

    def test_renders_let(self):
        assert render(ast.Let("X", M, ast.BagVar("X"))) == "let X := M in X"

    def test_rendering_is_deterministic(self, related):
        assert render(related) == render(related)


class TestTraversal:
    def test_iter_subexpressions_preorder(self):
        expr = ast.Union((M, ast.Negate(M)))
        nodes = list(iter_subexpressions(expr))
        assert nodes[0] is expr
        assert M in nodes
        assert any(isinstance(node, ast.Negate) for node in nodes)

    def test_count_nodes(self, related):
        assert count_nodes(related) > 5
        assert count_nodes(M) == 1

    def test_map_expr_identity_returns_same_structure(self, related):
        assert map_expr(related, lambda node: node) == related

    def test_map_expr_rewrites_leaves(self):
        other = ast.Relation("N", bag_of(MOVIE))
        expr = ast.Union((M, M))

        def swap(node):
            if node == M:
                return other
            return node

        assert map_expr(expr, swap) == ast.Union((other, other))

    def test_replace_subexpressions(self):
        expr = ast.Union((M, ast.Negate(M)))
        replaced = replace_subexpressions(expr, {M: ast.Empty()})
        assert replaced == ast.Union((ast.Empty(), ast.Negate(ast.Empty())))
