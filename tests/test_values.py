"""Unit tests for nested-value helpers."""

import pytest

from repro.bag import (
    Bag,
    is_base_value,
    is_nested_value,
    iter_inner_bags,
    nested_cardinalities,
    render_value,
    value_depth,
    value_size,
)


class TestPredicatesOnValues:
    def test_base_values(self):
        for value in ("a", 1, 1.5, True):
            assert is_base_value(value)
        assert not is_base_value(("a",))
        assert not is_base_value(Bag(["a"]))

    def test_nested_value_recognition(self):
        assert is_nested_value(("a", Bag([("b", Bag(["c"]))])))
        assert not is_nested_value({"a": 1})
        assert not is_nested_value(("a", ["list"]))


class TestDepthAndSize:
    def test_depth_of_base_and_tuple(self):
        assert value_depth("a") == 0
        assert value_depth(("a", "b")) == 0
        assert value_depth(()) == 0

    def test_depth_of_nested_bags(self):
        assert value_depth(Bag(["a"])) == 1
        assert value_depth(Bag([Bag(["a"])])) == 2
        assert value_depth(("x", Bag([("y", Bag(["z"]))]))) == 2

    def test_depth_of_empty_bag(self):
        assert value_depth(Bag()) == 1

    def test_size_counts_multiplicities(self):
        assert value_size("a") == 1
        assert value_size(("a", "b")) == 2
        assert value_size(Bag.from_pairs([("a", 3)])) == 4  # bag itself + 3 copies

    def test_size_rejects_non_values(self):
        with pytest.raises(TypeError):
            value_size({"not": "a value"})

    def test_deep_nesting_beyond_the_recursion_limit(self):
        """Regression: the helpers are iterative (explicit stacks), so a
        workload value nested far deeper than Python's recursion limit must
        not raise RecursionError."""
        import sys

        depth = sys.getrecursionlimit() * 3
        value = "leaf"
        for _ in range(depth):
            value = Bag([value])
        assert is_nested_value(value)
        assert value_depth(value) == depth
        assert value_size(value) == depth + 1
        # Tuples interleaved with bags stress both branches of the walk.
        value = "leaf"
        for _ in range(depth):
            value = (Bag([value]),)
        assert is_nested_value(value)
        assert value_depth(value) == depth


class TestNestedCardinalities:
    def test_paper_example(self):
        """The introduction's {{a},{b},{c,d}} has cost shape 3{2}."""
        value = Bag([Bag(["a"]), Bag(["b"]), Bag(["c", "d"])])
        assert nested_cardinalities(value) == (3, 2)

    def test_flat_bag(self):
        assert nested_cardinalities(Bag(["a", "b"])) == (2,)

    def test_tuple_merges_levels(self):
        value = (Bag(["a"]), Bag(["b", "c", "d"]))
        assert nested_cardinalities(value) == (3,)

    def test_base_value_has_no_levels(self):
        assert nested_cardinalities("a") == ()


class TestInnerBags:
    def test_iter_inner_bags_of_tuple(self):
        inner = Bag(["x"])
        value = ("a", inner)
        assert list(iter_inner_bags(value)) == [inner]

    def test_iter_inner_bags_recurses(self):
        deepest = Bag(["z"])
        value = ("a", Bag([("b", deepest)]))
        found = list(iter_inner_bags(value))
        assert deepest in found
        assert len(found) == 2

    def test_top_level_bag_is_not_yielded(self):
        bag = Bag([("a", Bag(["x"]))])
        found = list(iter_inner_bags(bag))
        assert bag not in found
        assert len(found) == 1


class TestRendering:
    def test_render_tuple_and_bag(self):
        value = ("a", Bag(["x", "y"]))
        assert render_value(value) == "⟨a, {x, y}⟩"

    def test_render_shows_multiplicities(self):
        assert render_value(Bag.from_pairs([("x", 2)])) == "{x^2}"

    def test_render_is_deterministic(self):
        assert render_value(Bag(["b", "a"])) == render_value(Bag(["a", "b"]))
