"""End-to-end reproduction of the paper's worked examples.

Each test corresponds to a numbered example or a concrete claim of the paper
and checks our implementation against the values printed in the paper itself.
"""

from repro.bag import Bag, EMPTY_BAG
from repro.cost import ATOM_COST, BagCost, CostContext, TupleCost, cost_of, size_of, tcost
from repro.delta import delta, delta_tower
from repro.ivm import Database, NaiveView, NestedIVMView, Update
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.evaluator import Environment, evaluate_bag
from repro.nrc.pretty import render
from repro.nrc.types import BASE, bag_of, tuple_of
from repro.relational import RelSchema, relational_delta
from repro.shredding import shred_query
from repro.workloads import MOVIE_SCHEMA, PAPER_MOVIES, PAPER_UPDATE, doz_query, related_query

M = ast.Relation("M", MOVIE_SCHEMA)


class TestExample1RelatedQuery:
    """Example 1: the related-movies view and its update."""

    def test_initial_instance(self):
        result = evaluate_bag(related_query(), Environment(relations={"M": PAPER_MOVIES}))
        assert dict(result.elements()) == {
            "Drive": EMPTY_BAG,
            "Skyfall": Bag(["Rush"]),
            "Rush": Bag(["Skyfall"]),
        }

    def test_updated_instance(self):
        updated = PAPER_MOVIES.union(PAPER_UPDATE)
        result = evaluate_bag(related_query(), Environment(relations={"M": updated}))
        assert dict(result.elements()) == {
            "Drive": Bag(["Jarhead"]),
            "Skyfall": Bag(["Rush", "Jarhead"]),
            "Rush": Bag(["Skyfall"]),
            "Jarhead": Bag(["Drive", "Skyfall"]),
        }


class TestSection21Shredding:
    """Section 2.1/2.2: relatedF, relatedΓ and their deltas."""

    def test_related_flat_and_context_tables(self):
        shredded = shred_query(related_query())
        from repro.shredding import build_shredded_environment

        env = build_shredded_environment({"M": PAPER_MOVIES}, {"M": MOVIE_SCHEMA})
        flat = shredded.evaluate_flat(env)
        # relatedF has one tuple per movie, with a label in the second column.
        assert flat.cardinality() == 3
        names = {row[0] for row in flat.elements()}
        assert names == {"Drive", "Skyfall", "Rush"}
        # relatedΓ maps each label to the bag of related movie names.
        context = shredded.evaluate_context(env)
        dictionary = context.components[1].dictionary
        by_name = {row[0]: dictionary.lookup(row[1]) for row in flat.elements()}
        assert by_name == {
            "Drive": EMPTY_BAG,
            "Skyfall": Bag(["Rush"]),
            "Rush": Bag(["Skyfall"]),
        }

    def test_delta_of_related_flat_reads_only_the_update(self):
        shredded = shred_query(related_query())
        flat_delta = delta(shredded.flat, ["M__F"])
        assert "ΔM__F" in render(flat_delta)
        assert "for m in ΔM__F" in render(flat_delta)

    def test_ivm_cost_grows_slower_than_recomputation(self):
        """The §2.2 cost analysis: O(nd + d²) vs Ω((n+d)²)."""
        from repro.workloads import generate_movies

        ops = {}
        for n in (50, 200):
            database = Database()
            database.register("M", MOVIE_SCHEMA, generate_movies(n))
            naive = NaiveView(related_query(), database)
            nested = NestedIVMView(related_query(), database)
            database.apply_update(Update(relations={"M": PAPER_UPDATE}))
            ops[n] = (naive.stats.mean_update_operations, nested.stats.mean_update_operations)
        naive_growth = ops[200][0] / ops[50][0]
        ivm_growth = ops[200][1] / ops[50][1]
        assert naive_growth > 8   # roughly quadratic in n
        assert ivm_growth < 6     # roughly linear in n


class TestExample2And3Filter:
    def test_filter_definition_and_delta(self):
        query = build.filter_query(M, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x")
        result = evaluate_bag(query, Environment(relations={"M": PAPER_MOVIES}))
        assert result == Bag([("Drive", "Drama", "Refn")])
        delta_query = delta(query, ["M"])
        assert render(delta_query) == "for x in ΔM where x.1 == 'Drama' union sng(x)"


class TestExample4HigherOrderDeltas:
    def test_first_and_second_order_deltas(self, selfjoin_query):
        tower = delta_tower(selfjoin_query, ["R"])
        assert tower.height == 2
        first = render(tower.level(1))
        second = render(tower.level(2))
        assert "flatten(ΔR)" in first and "flatten(R)" in first
        assert "flatten(R)" not in second
        assert "Δ'R" in second


class TestExample5And6Costs:
    def test_example_5_size(self):
        value = Bag(
            [("Comedy", Bag(["Carnage"])), ("Animation", Bag(["Up", "Shrek", "Cars"]))]
        )
        assert size_of(value).render() == "2{⟨1, 3{1}⟩}"

    def test_example_6_cost_of_related(self):
        context = CostContext.from_instances(relations={"M": PAPER_MOVIES})
        cost = cost_of(related_query(), context)
        assert cost == BagCost(3, TupleCost((ATOM_COST, BagCost(3, ATOM_COST))))
        assert tcost(cost) == 3 * (1 + 3)


class TestExample7Dictionaries:
    def test_relb_dictionary(self):
        """Dictionary [(ι, Movie) ↦ relB(m)] maps ⟨ι, m⟩ to m's related movies."""
        shredded = shred_query(related_query())
        from repro.shredding import build_shredded_environment
        from repro.nrc.evaluator import evaluate
        from repro.labels import Label

        env = build_shredded_environment({"M": PAPER_MOVIES}, {"M": MOVIE_SCHEMA})
        dictionary = evaluate(shredded.context.components[1].dictionary, env)
        label = Label("ι0", (("Skyfall", "Action", "Mendes"),))
        assert dictionary.lookup(label) == Bag(["Rush"])


class TestExample8FlatDOz:
    def test_doz_and_its_delta(self):
        movies = Bag([("Drive", "Drama"), ("Skyfall", "Action")])
        shows = Bag([("Drive", "Oz", "20:00"), ("Skyfall", "Oz", "21:00")])
        database = {"Mflat": movies, "Sh": shows}
        query = doz_query()
        assert query.evaluate(database) == Bag([("Drive",)])

        delta_sh = Bag([("Melancholia", "Oz", "22:00")])
        delta_m = Bag([("Melancholia", "Drama")])
        post = {"Mflat": movies.union(delta_m), "Sh": shows.union(delta_sh)}
        delta_query = relational_delta(query)
        incremental = query.evaluate(database).union(
            delta_query.evaluate(database, {("Sh", 1): delta_sh, ("Mflat", 1): delta_m})
        )
        assert incremental == query.evaluate(post)
        assert incremental.multiplicity(("Melancholia",)) == 1


class TestExample9NStr:
    def test_string_encoding_of_the_example_value(self):
        from repro.circuits import nested_to_symbols, symbols_to_position_relation

        value = Bag([("a", Bag(["b", "c"])), ("d", Bag(["e", "f"]))])
        symbols = nested_to_symbols(value)
        assert len(symbols) == 21  # the paper's table has positions 1..21
        relation = symbols_to_position_relation(symbols)
        assert relation.cardinality() == 21
