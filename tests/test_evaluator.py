"""Unit tests for the NRC+ evaluator (the semantics of Figure 3)."""

import pytest

from repro.bag import Bag, EMPTY_BAG
from repro.dictionaries import IntensionalDict, MaterializedDict
from repro.errors import EvaluationError, UnboundVariableError
from repro.instrument import OpCounter
from repro.labels import Label
from repro.nrc import ast, builders as build, predicates as preds
from repro.nrc.evaluator import Environment, evaluate, evaluate_bag
from repro.nrc.types import BASE, bag_of, tuple_of

MOVIE = tuple_of(BASE, BASE, BASE)
M = ast.Relation("M", bag_of(MOVIE))


def movie_env(movies):
    return Environment(relations={"M": movies})


class TestSourcesAndVariables:
    def test_relation_lookup(self, paper_movies):
        assert evaluate_bag(M, movie_env(paper_movies)) == paper_movies

    def test_unknown_relation(self):
        with pytest.raises(UnboundVariableError):
            evaluate_bag(M, Environment())

    def test_delta_relation_defaults_to_empty(self, paper_movies):
        expr = ast.DeltaRelation("M", bag_of(MOVIE))
        assert evaluate_bag(expr, movie_env(paper_movies)) == EMPTY_BAG

    def test_delta_relation_reads_binding(self, paper_movies, paper_update):
        expr = ast.DeltaRelation("M", bag_of(MOVIE))
        env = movie_env(paper_movies).with_deltas({("M", 1): paper_update})
        assert evaluate_bag(expr, env) == paper_update

    def test_let_binds_and_restores(self, paper_movies):
        expr = ast.Let("X", M, ast.BagVar("X"))
        assert evaluate_bag(expr, movie_env(paper_movies)) == paper_movies

    def test_unbound_bag_var(self):
        with pytest.raises(UnboundVariableError):
            evaluate_bag(ast.BagVar("X"), Environment())

    def test_unbound_elem_var(self):
        with pytest.raises(UnboundVariableError):
            evaluate_bag(ast.SngVar("x"), Environment())


class TestSingletonsAndConstants:
    def test_sng_var(self):
        env = Environment(elem_vars={"x": ("a", "b")})
        assert evaluate_bag(ast.SngVar("x"), env) == Bag([("a", "b")])

    def test_sng_proj(self):
        env = Environment(elem_vars={"x": ("a", ("b", "c"))})
        assert evaluate_bag(ast.SngProj("x", (1, 0)), env) == Bag(["b"])

    def test_sng_proj_failure(self):
        env = Environment(elem_vars={"x": "flat"})
        with pytest.raises(EvaluationError):
            evaluate_bag(ast.SngProj("x", (1,)), env)

    def test_sng_unit(self):
        assert evaluate_bag(ast.SngUnit(), Environment()) == Bag([()])

    def test_sng_wraps_a_bag_value(self, paper_movies):
        result = evaluate_bag(ast.Sng(M), movie_env(paper_movies))
        assert result == Bag([paper_movies])

    def test_empty(self):
        assert evaluate_bag(ast.Empty(), Environment()) == EMPTY_BAG

    def test_predicate_true_and_false(self):
        predicate = preds.eq(preds.var_path("x"), preds.const(1))
        env_true = Environment(elem_vars={"x": 1})
        env_false = Environment(elem_vars={"x": 2})
        assert evaluate_bag(ast.Pred(predicate), env_true) == Bag([()])
        assert evaluate_bag(ast.Pred(predicate), env_false) == EMPTY_BAG


class TestForAndStructural:
    def test_for_iterates_and_unions(self, paper_movies):
        expr = ast.For("m", M, ast.SngProj("m", (1,)))
        result = evaluate_bag(expr, movie_env(paper_movies))
        assert result == Bag(["Drama", "Action", "Action"])

    def test_for_scales_by_source_multiplicity(self):
        source = Bag.from_pairs([(("a",), 3)])
        expr = ast.For("x", ast.Relation("R", bag_of(tuple_of(BASE))), ast.SngProj("x", (0,)))
        result = evaluate_bag(expr, Environment(relations={"R": source}))
        assert result.multiplicity("a") == 3

    def test_for_with_negative_multiplicities(self):
        source = Bag.from_pairs([("a", -2)])
        expr = ast.For("x", ast.Relation("R", bag_of(BASE)), ast.SngVar("x"))
        result = evaluate_bag(expr, Environment(relations={"R": source}))
        assert result.multiplicity("a") == -2

    def test_where_clause_desugaring(self, paper_movies):
        predicate = preds.eq(preds.var_path("m", 1), preds.const("Action"))
        expr = build.for_in("m", M, build.proj("m", 0), condition=predicate)
        result = evaluate_bag(expr, movie_env(paper_movies))
        assert result == Bag(["Skyfall", "Rush"])

    def test_flatten(self):
        nested = Bag([Bag(["a", "b"]), Bag(["b"])])
        expr = ast.Flatten(ast.Relation("R", bag_of(bag_of(BASE))))
        result = evaluate_bag(expr, Environment(relations={"R": nested}))
        assert result == Bag(["a", "b", "b"])

    def test_flatten_requires_bags(self, paper_movies):
        expr = ast.Flatten(M)
        with pytest.raises(EvaluationError):
            evaluate_bag(expr, movie_env(paper_movies))

    def test_product_builds_flat_tuples(self):
        left = Bag(["a"])
        right = Bag(["x", "y"])
        expr = ast.Product((ast.Relation("L", bag_of(BASE)), ast.Relation("R", bag_of(BASE))))
        result = evaluate_bag(expr, Environment(relations={"L": left, "R": right}))
        assert result == Bag([("a", "x"), ("a", "y")])

    def test_nary_product(self):
        bag = Bag(["a", "b"])
        rel = ast.Relation("R", bag_of(BASE))
        expr = ast.Product((rel, rel, rel))
        result = evaluate_bag(expr, Environment(relations={"R": bag}))
        assert result.cardinality() == 8
        assert result.multiplicity(("a", "b", "a")) == 1

    def test_product_multiplicities_multiply(self):
        bag = Bag.from_pairs([("a", 2)])
        rel = ast.Relation("R", bag_of(BASE))
        expr = ast.Product((rel, rel))
        result = evaluate_bag(expr, Environment(relations={"R": bag}))
        assert result.multiplicity(("a", "a")) == 4

    def test_union_and_negate(self):
        left = Bag(["a"])
        right = Bag(["a", "b"])
        env = Environment(relations={"L": left, "R": right})
        l_rel, r_rel = ast.Relation("L", bag_of(BASE)), ast.Relation("R", bag_of(BASE))
        assert evaluate_bag(ast.Union((l_rel, r_rel)), env).multiplicity("a") == 2
        assert evaluate_bag(ast.Negate(l_rel), env).multiplicity("a") == -1

    def test_union_with_negation_expresses_deletion(self):
        env = Environment(relations={"R": Bag(["a", "b"])})
        rel = ast.Relation("R", bag_of(BASE))
        deletion = ast.Union((rel, ast.Negate(rel)))
        assert evaluate_bag(deletion, env) == EMPTY_BAG


class TestLabelConstructs:
    def test_in_label_packs_param_values(self):
        env = Environment(elem_vars={"m": ("Drive", "Drama", "Refn")})
        result = evaluate_bag(ast.InLabel("ι0", ("m",)), env)
        assert result == Bag([Label("ι0", (("Drive", "Drama", "Refn"),))])

    def test_dict_singleton_lookup(self, paper_movies):
        body = ast.For(
            "m2",
            M,
            ast.For(
                "_w",
                ast.Pred(preds.eq(preds.var_path("m2", 1), preds.var_path("g", 0))),
                ast.SngProj("m2", (0,)),
            ),
        )
        dictionary = evaluate(
            ast.DictSingleton("ι", ("g",), body), movie_env(paper_movies)
        )
        assert isinstance(dictionary, IntensionalDict)
        assert dictionary.lookup(Label("ι", (("Action",),))) == Bag(["Skyfall", "Rush"])
        assert dictionary.lookup(Label("other", (("Action",),))) == EMPTY_BAG

    def test_dict_empty_union_add(self):
        empty = ast.DictEmpty()
        assert evaluate(ast.DictUnion((empty, empty)), Environment()).support() == frozenset()
        assert evaluate(ast.DictAdd((empty, empty)), Environment()).support() == frozenset()

    def test_dict_var_and_lookup(self):
        label = Label("l", ())
        dictionary = MaterializedDict({label: Bag(["a"])})
        env = Environment(dictionaries={"D": dictionary}, elem_vars={"l": label})
        lookup = ast.DictLookup(ast.DictVar("D", bag_of(BASE)), "l")
        assert evaluate_bag(lookup, env) == Bag(["a"])

    def test_dict_lookup_requires_label(self):
        env = Environment(
            dictionaries={"D": MaterializedDict({})}, elem_vars={"l": "not-a-label"}
        )
        lookup = ast.DictLookup(ast.DictVar("D", bag_of(BASE)), "l")
        with pytest.raises(EvaluationError):
            evaluate_bag(lookup, env)

    def test_delta_dict_var_defaults_to_empty_dict(self):
        expr = ast.DeltaDictVar("D", bag_of(BASE))
        value = evaluate(expr, Environment())
        assert value.support() == frozenset()


class TestInstrumentation:
    def test_counter_counts_for_iterations(self, paper_movies):
        counter = OpCounter()
        expr = ast.For("m", M, ast.SngProj("m", (0,)))
        evaluate_bag(expr, movie_env(paper_movies), counter)
        assert counter.get("for_iterations") == 3
        assert counter.total() > 0

    def test_counter_is_optional(self, paper_movies):
        expr = ast.For("m", M, ast.SngProj("m", (0,)))
        assert evaluate_bag(expr, movie_env(paper_movies)) is not None

    def test_evaluate_bag_rejects_dictionaries(self):
        with pytest.raises(EvaluationError):
            evaluate_bag(ast.DictEmpty(), Environment())
