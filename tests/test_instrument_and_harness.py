"""Tests for the operation counters and the benchmark harness."""

import pytest

from repro.bench.harness import ResultTable, ratio, timed
from repro.instrument import OpCounter, maybe_count
from repro.ivm.views import MaintenanceStats


class TestOpCounter:
    def test_increment_and_get(self):
        counter = OpCounter()
        counter.increment("a")
        counter.increment("a", 4)
        assert counter.get("a") == 5
        assert counter.get("missing") == 0
        assert counter.total() == 5

    def test_merge_and_reset(self):
        left, right = OpCounter(), OpCounter()
        left.increment("x", 2)
        right.increment("x", 3)
        right.increment("y")
        left.merge(right)
        assert left.as_dict() == {"x": 5, "y": 1}
        left.reset()
        assert left.total() == 0

    def test_maybe_count_with_none(self):
        maybe_count(None, "anything")  # must not raise
        counter = OpCounter()
        maybe_count(counter, "x", 2)
        assert counter.get("x") == 2

    def test_items_sorted(self):
        counter = OpCounter()
        counter.increment("b")
        counter.increment("a")
        assert [name for name, _ in counter.items()] == ["a", "b"]


class TestMaintenanceStats:
    def test_recording(self):
        stats = MaintenanceStats()
        counter = OpCounter()
        counter.increment("work", 10)
        stats.record_init(0.5, counter)
        stats.record_update(0.1, counter)
        stats.record_update(0.2, counter)
        assert stats.updates_applied == 2
        assert stats.total_update_operations == 20
        assert stats.mean_update_operations == 10
        summary = stats.summary()
        assert summary["init_operations"] == 10

    def test_empty_stats(self):
        stats = MaintenanceStats()
        assert stats.mean_update_operations == 0.0
        assert stats.updates_applied == 0


class TestResultTable:
    def test_add_row_and_format(self):
        table = ResultTable("demo", ("n", "speedup"))
        table.add_row(n=10, speedup=1.2345)
        table.add_row(n=100, speedup=None)
        table.add_note("a note")
        text = table.format()
        assert "demo" in text
        assert "1.23" in text
        assert "note: a note" in text
        assert table.column("n") == [10, 100]

    def test_unknown_column_rejected(self):
        table = ResultTable("demo", ("n",))
        with pytest.raises(ValueError):
            table.add_row(bogus=1)

    def test_to_csv(self):
        table = ResultTable("demo", ("a", "b"))
        table.add_row(a=1, b=True)
        assert table.to_csv().splitlines() == ["a,b", "1,yes"]

    def test_to_csv_quotes_cells_with_commas(self):
        # Regression: cells containing commas (notes, string columns) used
        # to corrupt the output; the csv module must quote them so the text
        # parses back into the original cells.
        import csv
        import io

        table = ResultTable("demo", ("query", "n"))
        table.add_row(query="join(M, Sh), selective", n=10)
        table.add_row(query='say "hi"', n=20)
        parsed = list(csv.reader(io.StringIO(table.to_csv())))
        assert parsed == [
            ["query", "n"],
            ["join(M, Sh), selective", "10"],
            ['say "hi"', "20"],
        ]

    def test_timed_and_ratio(self):
        value, seconds = timed(lambda: 21 * 2)
        assert value == 42
        assert seconds >= 0
        assert ratio(10, 4) == 2.5
        assert ratio(1, 0) is None
