"""Unit tests for AST node construction and invariants."""

import pytest

from repro.nrc import ast
from repro.nrc.types import BASE, bag_of, tuple_of


class TestNodeValidation:
    def test_relation_requires_bag_schema(self):
        with pytest.raises(TypeError):
            ast.Relation("R", BASE)  # type: ignore[arg-type]

    def test_delta_relation_order_positive(self):
        with pytest.raises(ValueError):
            ast.DeltaRelation("R", bag_of(BASE), order=0)

    def test_product_requires_two_factors(self):
        with pytest.raises(ValueError):
            ast.Product((ast.Relation("R", bag_of(BASE)),))

    def test_union_requires_a_term(self):
        with pytest.raises(ValueError):
            ast.Union(())

    def test_sng_proj_rejects_negative_indices(self):
        with pytest.raises(ValueError):
            ast.SngProj("x", (-1,))

    def test_dict_union_requires_a_term(self):
        with pytest.raises(ValueError):
            ast.DictUnion(())

    def test_dict_singleton_param_types_length_checked(self):
        with pytest.raises(ValueError):
            ast.DictSingleton("ι", ("x",), ast.Empty(), None, (BASE, BASE))

    def test_dict_var_requires_bag_value_type(self):
        with pytest.raises(TypeError):
            ast.DictVar("D", BASE)  # type: ignore[arg-type]


class TestChildren:
    def test_leaf_nodes_have_no_children(self):
        relation = ast.Relation("R", bag_of(BASE))
        assert relation.children() == ()
        assert ast.SngVar("x").children() == ()
        assert ast.Empty().children() == ()
        assert ast.InLabel("ι", ("x",)).children() == ()

    def test_for_children_order(self):
        relation = ast.Relation("R", bag_of(BASE))
        node = ast.For("x", relation, ast.SngVar("x"))
        assert node.children() == (relation, ast.SngVar("x"))

    def test_let_children_order(self):
        relation = ast.Relation("R", bag_of(BASE))
        node = ast.Let("X", relation, ast.BagVar("X"))
        assert node.children() == (relation, ast.BagVar("X"))

    def test_nary_children(self):
        relation = ast.Relation("R", bag_of(BASE))
        product = ast.Product((relation, relation, relation))
        assert len(product.children()) == 3
        union = ast.Union((relation, relation))
        assert len(union.children()) == 2


class TestOperatorSugar:
    def test_add_builds_union(self):
        relation = ast.Relation("R", bag_of(BASE))
        assert isinstance(relation + relation, ast.Union)

    def test_mul_builds_product(self):
        relation = ast.Relation("R", bag_of(BASE))
        assert isinstance(relation * relation, ast.Product)

    def test_neg_builds_negate(self):
        relation = ast.Relation("R", bag_of(BASE))
        assert isinstance(-relation, ast.Negate)

    def test_nodes_are_hashable_and_comparable(self):
        a = ast.Relation("R", bag_of(tuple_of(BASE, BASE)))
        b = ast.Relation("R", bag_of(tuple_of(BASE, BASE)))
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
