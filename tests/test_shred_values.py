"""Tests for value shredding and nesting (Figure 9, Lemma 6)."""

import pytest

from repro.bag import Bag, EMPTY_BAG
from repro.errors import ShreddingError
from repro.labels import Label, LabelFactory
from repro.nrc.types import BASE, bag_of, tuple_of
from repro.shredding import (
    BagContext,
    TupleContext,
    ValueShredder,
    check_consistency,
    collect_labels,
    is_consistent,
    shred_bag,
    unshred_bag,
    unshred_value,
)
from repro.workloads import generate_nested_bag, nested_bag_type

NESTED_PAIR = tuple_of(BASE, bag_of(BASE))


class TestValueShredding:
    def test_flat_bags_are_unchanged(self):
        bag = Bag([("a", "b"), ("c", "d")])
        flat, context = shred_bag(bag, tuple_of(BASE, BASE))
        assert flat == bag
        assert not list(collect_labels(flat))

    def test_inner_bags_become_labels(self):
        value = Bag([("a", Bag(["x", "y"])), ("b", Bag(["z"]))])
        flat, context = shred_bag(value, NESTED_PAIR)
        labels = collect_labels(flat)
        assert len(labels) == 2
        assert isinstance(context, TupleContext)
        dictionary = context.components[1].dictionary
        assert dictionary.support() == labels

    def test_equal_inner_bags_share_a_label(self):
        shared = Bag(["x"])
        value = Bag([("a", shared), ("b", shared)])
        flat, context = shred_bag(value, NESTED_PAIR)
        labels = collect_labels(flat)
        assert len(labels) == 1

    def test_multiplicities_are_preserved(self):
        value = Bag.from_pairs([(("a", Bag(["x"])), 3)])
        flat, _ = shred_bag(value, NESTED_PAIR)
        assert flat.cardinality() == 3

    def test_negative_multiplicities_are_preserved(self):
        value = Bag.from_pairs([(("a", Bag(["x"])), -2)])
        flat, _ = shred_bag(value, NESTED_PAIR)
        assert list(flat.items())[0][1] == -2

    def test_empty_bag_produces_shaped_context(self):
        flat, context = shred_bag(EMPTY_BAG, NESTED_PAIR)
        assert flat == EMPTY_BAG
        assert isinstance(context, TupleContext)
        assert isinstance(context.components[1], BagContext)

    def test_type_mismatch_is_rejected(self):
        with pytest.raises(ShreddingError):
            shred_bag(Bag(["just a string"]), NESTED_PAIR)

    def test_fresh_labels_across_updates(self):
        shredder = ValueShredder(LabelFactory("t"))
        first_flat, _ = shredder.shred_bag(Bag([("a", Bag(["x"]))]), NESTED_PAIR)
        second_flat, _ = shredder.shred_bag(Bag([("b", Bag(["y"]))]), NESTED_PAIR)
        assert collect_labels(first_flat).isdisjoint(collect_labels(second_flat))

    def test_reshredding_existing_bag_does_not_redefine(self):
        shredder = ValueShredder()
        inner = Bag(["x"])
        shredder.shred_bag(Bag([("a", inner)]), NESTED_PAIR)
        _, context = shredder.shred_bag(Bag([("b", inner)]), NESTED_PAIR)
        # The label is reused but its definition is not emitted again.
        assert len(context.components[1].dictionary) == 0


class TestLemma6RoundTrip:
    """u ∘ (s^F, s^Γ) = id on nested values."""

    @pytest.mark.parametrize("depth", [1, 2, 3])
    def test_roundtrip_random_values(self, depth):
        bag_type = nested_bag_type(depth)
        value = generate_nested_bag(depth, top_cardinality=15, inner_cardinality=3, seed=depth)
        flat, context = shred_bag(value, bag_type.element)
        assert unshred_bag(flat, bag_type.element, context) == value

    def test_roundtrip_paper_style_value(self):
        value = Bag([("a", Bag(["x1", "x2"])), ("b", Bag(["x3"]))])
        flat, context = shred_bag(value, NESTED_PAIR)
        assert unshred_bag(flat, NESTED_PAIR, context) == value

    def test_roundtrip_with_empty_inner_bag(self):
        value = Bag([("a", EMPTY_BAG), ("b", Bag(["x"]))])
        flat, context = shred_bag(value, NESTED_PAIR)
        assert unshred_bag(flat, NESTED_PAIR, context) == value

    def test_roundtrip_triple_nesting(self):
        triple = bag_of(bag_of(bag_of(BASE)))
        value = Bag([Bag([Bag(["a"]), Bag(["b", "c"])]), Bag([Bag(["d"])])])
        flat, context = shred_bag(value, triple.element)
        assert unshred_bag(flat, triple.element, context) == value

    def test_unshred_requires_value_context(self):
        value = Bag([("a", Bag(["x"]))])
        flat, context = shred_bag(value, NESTED_PAIR)
        with pytest.raises(ShreddingError):
            unshred_value("not-a-label", bag_of(BASE), context.components[1])


class TestConsistency:
    def test_shredding_produces_consistent_values(self):
        """Lemma 11."""
        value = Bag([("a", Bag(["x", "y"])), ("b", Bag(["z"]))])
        flat, context = shred_bag(value, NESTED_PAIR)
        check_consistency(flat, NESTED_PAIR, context)
        assert is_consistent(flat, NESTED_PAIR, context)

    def test_missing_definition_is_detected(self):
        value = Bag([("a", Bag(["x"]))])
        flat, context = shred_bag(value, NESTED_PAIR)
        broken = TupleContext(
            (context.components[0], BagContext(context.components[1].dictionary.without_entry(
                next(iter(collect_labels(flat)))
            ), context.components[1].element))
        )
        assert not is_consistent(flat, NESTED_PAIR, broken)

    def test_non_label_flat_value_is_detected(self):
        value = Bag([("a", Bag(["x"]))])
        _, context = shred_bag(value, NESTED_PAIR)
        assert not is_consistent(Bag([("a", "not-a-label")]), NESTED_PAIR, context)

    def test_update_consistency_check(self):
        from repro.shredding.consistency import check_update_consistency
        from repro.errors import ConsistencyError

        base = frozenset({Label("l1")})
        fresh_ok = frozenset({Label("l2")})
        check_update_consistency(base, fresh_ok, frozenset())
        with pytest.raises(ConsistencyError):
            check_update_consistency(base, frozenset({Label("l1")}), frozenset())
        # Redefinitions of existing labels are allowed when declared as such.
        check_update_consistency(base, frozenset({Label("l1")}), frozenset({Label("l1")}))
