"""A second nested workload: per-user feeds, with shallow and deep updates.

``feed`` associates to every user the posts written by other users in the
same city — a nested view like ``related``.  The script maintains it under a
stream of post insertions, and then applies a *deep update* directly to an
inner bag of a nested input relation to show that only the touched label is
refreshed.

Run with::

    python examples/social_feed_deep_updates.py
"""

from repro.bag import Bag, render_value
from repro.ivm import Database, NaiveView, NestedIVMView, Update
from repro.nrc import ast, builders as build
from repro.nrc.types import BASE, bag_of
from repro.shredding.shred_database import input_dict_name
from repro.workloads import (
    POST_SCHEMA,
    USER_SCHEMA,
    feed_query,
    generate_posts,
    generate_users,
    post_update_stream,
)


def feed_maintenance() -> None:
    users = generate_users(40, num_cities=5)
    posts = generate_posts(users, posts_per_user=3)
    database = Database()
    database.register("Users", USER_SCHEMA, users)
    database.register("Posts", POST_SCHEMA, posts)

    query = feed_query()
    naive = NaiveView(query, database)
    feed = NestedIVMView(query, database)

    for update in post_update_stream(users, num_updates=5, batch_size=3):
        database.apply_update(update)
    assert feed.result() == naive.result()
    print(
        "feed view maintained over 5 update batches — "
        f"naive ≈ {naive.stats.mean_update_operations:.0f} ops/update, "
        f"shredded IVM ≈ {feed.stats.mean_update_operations:.0f} ops/update"
    )


def deep_update_demo() -> None:
    """Update one inner bag of a nested input without touching its siblings."""
    schema = bag_of(bag_of(BASE))
    database = Database()
    database.register(
        "Groups", schema, Bag([Bag(["alice", "bob"]), Bag(["carol"]), Bag(["dave", "erin"])])
    )
    query = build.for_in("g", ast.Relation("Groups", schema), ast.SngVar("g"))
    view = NestedIVMView(query, database)
    print("\ngroups before:", render_value(view.result()))

    dictionary_name = input_dict_name("Groups", ())
    dictionary = database.shredded_environment().dictionaries[dictionary_name]
    label = sorted(dictionary.support(), key=lambda l: l.render())[0]
    database.apply_update(Update(deep={dictionary_name: {label: Bag(["frank"])}}))

    print("groups after adding 'frank' to one inner bag:", render_value(view.result()))
    print(
        "operations spent on the deep update:",
        int(view.stats.update_operations[-1]),
        "(independent of the number of groups)",
    )


def main() -> None:
    feed_maintenance()
    deep_update_demo()


if __name__ == "__main__":
    main()
