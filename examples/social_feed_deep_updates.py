"""A second nested workload: per-user feeds, with shallow and deep updates.

``feed`` associates to every user the posts written by other users in the
same city — a nested view like ``related``.  The engine maintains it under a
stream of post insertions, and then applies a *deep update* directly to an
inner bag of a nested input relation to show that only the touched label is
refreshed.

Run with::

    python examples/social_feed_deep_updates.py
"""

from repro import Engine, Update
from repro.bag import Bag, render_value
from repro.nrc import ast, builders as build
from repro.nrc.types import BASE, bag_of
from repro.shredding.shred_database import input_dict_name
from repro.workloads import feed_query, post_update_stream, social_engine


def feed_maintenance() -> None:
    engine = social_engine(num_users=40, num_cities=5, posts_per_user=3)
    query = feed_query()
    naive = engine.view("naive", query, strategy="naive")
    feed = engine.view("feed", query, strategy="auto")
    print("planner chose:", feed.strategy)

    engine.apply_stream(
        post_update_stream(engine.relation("Users"), num_updates=5, batch_size=3)
    )
    assert feed.result() == naive.result()
    print(
        "feed view maintained over 5 update batches — "
        f"naive ≈ {naive.stats.mean_update_operations:.0f} ops/update, "
        f"{feed.strategy} IVM ≈ {feed.stats.mean_update_operations:.0f} ops/update"
    )


def deep_update_demo() -> None:
    """Update one inner bag of a nested input without touching its siblings."""
    schema = bag_of(bag_of(BASE))
    engine = Engine()
    groups = engine.dataset(
        "Groups", schema, Bag([Bag(["alice", "bob"]), Bag(["carol"]), Bag(["dave", "erin"])])
    )
    query = build.for_in("g", groups, ast.SngVar("g"))
    view = engine.view("groups", query, strategy="nested")
    print("\ngroups before:", render_value(view.result()))

    dictionary_name = input_dict_name("Groups", ())
    dictionary = engine.database.shredded_environment().dictionaries[dictionary_name]
    label = sorted(dictionary.support(), key=lambda l: l.render())[0]
    engine.apply(Update(deep={dictionary_name: {label: Bag(["frank"])}}))

    print("groups after adding 'frank' to one inner bag:", render_value(view.result()))
    print(
        "operations spent on the deep update:",
        int(view.stats.update_operations[-1]),
        "(independent of the number of groups)",
    )


def main() -> None:
    feed_maintenance()
    deep_update_demo()


if __name__ == "__main__":
    main()
