"""Recursive IVM on Example 4: ``flatten(R) × flatten(R)``.

The first-order delta of this query still depends on the database (it
mentions ``flatten(R)``), so recursive IVM materializes that part once and
maintains it with the second-order delta.  The cost-driven planner detects
exactly this — the residual delta never re-scans ``R`` — and picks the
recursive backend on its own.  The script prints the delta tower, the
planner's reasoning, and the per-update work of all three strategies.

Run with::

    python examples/recursive_ivm_selfjoin.py [n]
"""

import sys

from repro.delta import delta_tower
from repro.nrc import ast
from repro.nrc.pretty import render
from repro.nrc.types import BASE, bag_of
from repro.workloads import bag_of_bags_engine, nested_update_stream


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    schema = bag_of(bag_of(BASE))
    relation = ast.Relation("R", schema)
    query = ast.Product((ast.Flatten(relation), ast.Flatten(relation)))

    # The tower of higher-order deltas (Theorem 2: height = degree = 2).
    tower = delta_tower(query, ["R"])
    print("query degree:", tower.height)
    for order, level in enumerate(tower.levels):
        print(f"  δ^{order}(h) =", render(level))

    engine = bag_of_bags_engine(size, inner_cardinality=4)
    naive = engine.view("naive", query, strategy="naive")
    classic = engine.view("classic", query, strategy="classic")
    auto = engine.view("selfjoin", query, strategy="auto")
    print("\n" + engine.explain(auto).render())
    assert auto.strategy == "recursive"
    print("\nmaterialized by recursive IVM:", auto.view.materialized_names())
    print("residual delta:", render(auto.view.residual_delta))

    engine.apply_stream(nested_update_stream("R", 3, 1, inner_cardinality=4))
    assert classic.result() == naive.result() == auto.result()

    print(
        "\nmean operations/update — naive: %.0f, classic IVM: %.0f, recursive IVM: %.0f"
        % (
            naive.stats.mean_update_operations,
            classic.stats.mean_update_operations,
            auto.stats.mean_update_operations,
        )
    )


if __name__ == "__main__":
    main()
