"""Recursive IVM on Example 4: ``flatten(R) × flatten(R)``.

The first-order delta of this query still depends on the database (it
mentions ``flatten(R)``), so recursive IVM materializes that part once and
maintains it with the second-order delta.  The script prints the whole delta
tower and compares per-update work of classical and recursive IVM.

Run with::

    python examples/recursive_ivm_selfjoin.py [n]
"""

import sys

from repro.delta import delta_tower
from repro.ivm import ClassicIVMView, Database, NaiveView, RecursiveIVMView
from repro.nrc import ast
from repro.nrc.pretty import render
from repro.nrc.types import BASE, bag_of
from repro.workloads import generate_bag_of_bags, nested_update_stream


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    schema = bag_of(bag_of(BASE))
    relation = ast.Relation("R", schema)
    query = ast.Product((ast.Flatten(relation), ast.Flatten(relation)))

    # The tower of higher-order deltas (Theorem 2: height = degree = 2).
    tower = delta_tower(query, ["R"])
    print("query degree:", tower.height)
    for order, level in enumerate(tower.levels):
        print(f"  δ^{order}(h) =", render(level))

    database = Database()
    database.register("R", schema, generate_bag_of_bags(size, inner_cardinality=4))
    naive = NaiveView(query, database)
    classic = ClassicIVMView(query, database)
    recursive = RecursiveIVMView(query, database)
    print("\nmaterialized by recursive IVM:", recursive.materialized_names())
    print("residual delta:", render(recursive.residual_delta))

    for update in nested_update_stream("R", 3, 1, inner_cardinality=4):
        database.apply_update(update)
    assert classic.result() == naive.result() == recursive.result()

    print(
        "\nmean operations/update — naive: %.0f, classic IVM: %.0f, recursive IVM: %.0f"
        % (
            naive.stats.mean_update_operations,
            classic.stats.mean_update_operations,
            recursive.stats.mean_update_operations,
        )
    )


if __name__ == "__main__":
    main()
