"""The paper's motivating example end to end (Sections 1, 2 and 5).

The nested ``related`` view associates to every movie the bag of movies that
share its genre or director.  Its delta needs *deep updates*, so the planner
maintains it in shredded form: a flat view plus a label dictionary, both
incrementally maintained, with the nested result reconstructed on demand.

Run with::

    python examples/related_movies_ivm.py [n]

where ``n`` (default 300) is the number of synthetic movies to start from.
"""

import sys

from repro import Update
from repro.bag import render_value
from repro.nrc.pretty import render
from repro.shredding import shred_query
from repro.workloads import (
    PAPER_MOVIES,
    PAPER_UPDATE,
    generate_movies,
    movie_update_stream,
    movies_engine,
    related_query,
)


def paper_instance_walkthrough() -> None:
    """Reproduce the tables of Example 1 and Section 2.2."""
    query = related_query()
    print("related ≡", render(query))

    shredded = shred_query(query)
    print("related^F ≡", render(shredded.flat))
    print("related^Γ ≡", render(shredded.context.components[1].dictionary))

    engine = movies_engine(PAPER_MOVIES)
    view = engine.view("related", query, strategy="auto")
    print("\nplanner chose:", view.strategy)
    print("related[M] =", render_value(view.result()))

    engine.apply(Update(relations={"M": PAPER_UPDATE}))
    print("related[M ⊎ ΔM] =", render_value(view.result()))


def scaled_comparison(size: int) -> None:
    """Compare per-update work of auto-planned IVM against re-evaluation."""
    query = related_query()
    engine = movies_engine(generate_movies(size), expected_update_size=4)
    naive = engine.view("naive", query, strategy="naive")
    auto = engine.view("related", query, strategy="auto")
    print("\n" + engine.explain(auto).render())

    engine.apply_stream(
        movie_update_stream(3, 4, existing=engine.relation("M"), deletion_ratio=0.25)
    )
    assert auto.result() == naive.result()

    naive_ops = naive.stats.mean_update_operations
    auto_ops = auto.stats.mean_update_operations
    print(
        f"\nn = {size}: naive re-evaluation ≈ {naive_ops:.0f} operations/update, "
        f"auto ({auto.strategy}) IVM ≈ {auto_ops:.0f} operations/update "
        f"(speedup ×{naive_ops / auto_ops:.1f})"
    )


def main() -> None:
    size = int(sys.argv[1]) if len(sys.argv) > 1 else 300
    paper_instance_walkthrough()
    scaled_comparison(size)


if __name__ == "__main__":
    main()
