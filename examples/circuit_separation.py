"""The complexity separation of Section 5.4, made concrete.

Maintaining a shredded view under a constant-size update is per-slot addition
modulo 2^k — an NC0 circuit whose output bits each depend on 2k input bits no
matter how large the database grows.  Re-evaluating a query that aggregates
over the whole input (flatten / projection) needs output bits that depend on
every input slot.  The script builds both circuit families, runs the
maintenance circuit on a real encoded view, and prints how the cone sizes
scale.

Run with::

    python examples/circuit_separation.py
"""

from repro.bag import Bag
from repro.circuits import (
    ActiveDomain,
    apply_update_circuit,
    build_recompute_circuit,
    build_update_circuit,
    encode_fbag,
)


def main() -> None:
    k = 4
    domain = ActiveDomain(tuple(f"v{i}" for i in range(4)))

    # A concrete maintenance step on the FBag encoding of a flat (shredded) view.
    view = encode_fbag(Bag.from_pairs([(("v0",), 2), (("v2",), 1)]), domain, arity=1, k=k)
    delta = encode_fbag(Bag.from_pairs([(("v0",), 1), (("v3",), 5)]), domain, arity=1, k=k)
    circuit = build_update_circuit(view.num_slots, k)
    _, updated = apply_update_circuit(circuit, view, delta)
    print("view ⊎ delta decoded from the circuit output:", updated)

    print("\nslots | maintenance cone | recompute cone | maintenance depth | recompute depth")
    for slots in (4, 8, 16, 32, 64):
        update_circuit = build_update_circuit(slots, k)
        recompute_circuit = build_recompute_circuit(slots, k)
        print(
            f"{slots:5d} | {update_circuit.max_cone_size():16d} | "
            f"{recompute_circuit.max_cone_size():14d} | "
            f"{update_circuit.depth():17d} | {recompute_circuit.depth():15d}"
        )
    print(
        "\nThe maintenance cone stays at 2k bits (NC0); the re-evaluation cone grows "
        "linearly with the database (it cannot be NC0), matching Theorem 9."
    )


if __name__ == "__main__":
    main()
