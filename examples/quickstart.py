"""Quickstart: build an NRC+ query, derive its delta and maintain it incrementally.

Run with::

    python examples/quickstart.py

The example follows the paper's filter query (Examples 2 and 3): a view over a
movies relation is materialized once and then kept up to date by evaluating
only the delta query on each update.
"""

from repro.bag import Bag
from repro.delta import delta
from repro.ivm import ClassicIVMView, Database, NaiveView, insertions
from repro.nrc import builders as build, predicates as preds
from repro.nrc.ast import Relation
from repro.nrc.pretty import render
from repro.nrc.types import BASE, BagType, tuple_of


def main() -> None:
    # 1. Declare the schema and the query: all drama movies.
    movie_type = tuple_of(BASE, BASE, BASE)            # ⟨name, genre, director⟩
    movies = Relation("M", BagType(movie_type))
    dramas = build.filter_query(
        movies, preds.eq(preds.var_path("x", 1), preds.const("Drama")), "x"
    )
    print("query      :", render(dramas))

    # 2. Derive the delta query (Figure 4).  It only reads the update ΔM.
    delta_query = delta(dramas, targets=["M"])
    print("delta query:", render(delta_query))

    # 3. Register data and materialize the view.
    database = Database()
    database.register(
        "M",
        BagType(movie_type),
        Bag(
            [
                ("Drive", "Drama", "Refn"),
                ("Skyfall", "Action", "Mendes"),
                ("Rush", "Action", "Howard"),
            ]
        ),
    )
    ivm_view = ClassicIVMView(dramas, database)       # maintained with the delta
    naive_view = NaiveView(dramas, database)          # recomputed for comparison
    print("initial    :", ivm_view.result())

    # 4. Apply updates; the database notifies both views.
    database.apply_update(insertions("M", [("Jarhead", "Drama", "Mendes")]))
    database.apply_update(insertions("M", [("Heat", "Crime", "Mann")]))
    print("after two updates:", ivm_view.result())
    assert ivm_view.result() == naive_view.result()

    # 5. Compare the work done per update (abstract operation counts).
    print(
        "mean operations per update — naive: %.0f, incremental: %.0f"
        % (
            naive_view.stats.mean_update_operations,
            ivm_view.stats.mean_update_operations,
        )
    )


if __name__ == "__main__":
    main()
