"""Quickstart: the `repro.engine` facade end to end.

Run with::

    python examples/quickstart.py

One Engine owns the database.  Views are declared with
``engine.view(name, query, strategy="auto")``: the cost model of Section 4
picks the maintenance strategy per view, and ``engine.explain`` shows the
estimates behind each choice.  The example builds the paper's filter query
(Examples 2 and 3) through the comprehension DSL and the nested ``related``
query (Example 1), and maintains both under the same update stream.
"""

from repro import Engine, Record, STRING, field_types, nest

MOVIE = Record("Movie", field_types(name=STRING, gen=STRING, dir=STRING))


def main() -> None:
    # 1. One engine per session; datasets are registered with named-record
    #    schemas and give back surface-DSL handles for query building.
    engine = Engine()
    movies = engine.dataset(
        "M",
        MOVIE,
        rows=[
            ("Drive", "Drama", "Refn"),
            ("Skyfall", "Action", "Mendes"),
            ("Rush", "Action", "Howard"),
        ],
    )

    # 2. Declare queries in the comprehension DSL (Section 1 style).
    x = movies.row("x")
    dramas = movies.iterate(x).where(x.field("gen") == "Drama").select(x.field("name"))

    m, m2 = movies.row("m"), movies.row("m2")
    rel_b = (
        movies.iterate(m2)
        .where(
            (m.field("name") != m2.field("name"))
            & ((m.field("gen") == m2.field("gen")) | (m.field("dir") == m2.field("dir")))
        )
        .select(m2.field("name"))
    )
    related = movies.iterate(m).select(m.field("name"), nest(rel_b))

    # 3. The planner picks a different backend per view: first-order delta
    #    processing for the flat filter, shredded IVM for the nested query.
    dramas_view = engine.view("dramas", dramas, strategy="auto")
    related_view = engine.view("related", related, strategy="auto")
    print(engine.explain("dramas").render())
    print()
    print(engine.explain("related").render())

    # 4. Apply updates once; every view refreshes incrementally.
    engine.insert("M", [("Jarhead", "Drama", "Mendes")])
    engine.insert("M", [("Heat", "Crime", "Mann")])
    print("\ndramas  :", dramas_view.result())
    print("related :", related_view.result())

    # 5. Maintenance accounting comes with every view.
    print("\ndramas stats :", dramas_view.stats)
    print("related stats:", related_view.stats)


if __name__ == "__main__":
    main()
