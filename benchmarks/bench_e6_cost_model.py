"""E6 — §4.2 / Lemma 3 / Example 6: the cost model versus measured work."""

from repro.bench.experiments import run_e6_cost_model


def test_e6_cost_model(benchmark, assert_table):
    table = benchmark(run_e6_cost_model, sizes=(50, 100))
    assert_table(table, ("predicted_tcost", "measured_ops"))
    assert all(row["measured_over_predicted"] is not None for row in table.rows)
