"""E8 — §2.2 / §5.2: deep updates through dictionary deltas."""

from repro.bench.experiments import run_e8_deep_updates


def test_e8_deep_updates(benchmark, assert_table):
    table = benchmark(run_e8_deep_updates, sizes=(50, 200), inner_cardinality=5, touched_labels=2)
    assert_table(table, ("ivm_ops", "rebuild_size"))
    ops = table.column("ivm_ops")
    assert ops[0] == ops[-1]
