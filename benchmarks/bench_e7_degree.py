"""E7 — Theorem 2: tower heights equal query degrees."""

from repro.bench.experiments import run_e7_degree_towers


def test_e7_degree_towers(benchmark, assert_table):
    table = benchmark(run_e7_degree_towers, max_degree=5)
    assert_table(table, ("degree", "tower_height", "matches_theorem"))
    assert all(row["matches_theorem"] for row in table.rows)
