"""E1 — §2.2 cost analysis: nested IVM of `related` vs re-evaluation."""

from repro.bench.experiments import run_e1_related_ivm


def test_e1_related_ivm(benchmark, assert_table):
    table = benchmark(run_e1_related_ivm, sizes=(50, 100), batch_size=4, num_updates=2)
    assert_table(table, ("n", "naive_ops", "nested_ivm_ops", "speedup"))
    assert all(row["speedup"] > 1 for row in table.rows)
