"""E3 — Example 4 / §4.1: recursive IVM for flatten(R) × flatten(R)."""

from repro.bench.experiments import run_e3_selfjoin_recursive


def test_e3_selfjoin_recursive(benchmark, assert_table):
    table = benchmark(
        run_e3_selfjoin_recursive, sizes=(20, 40), inner_cardinality=4, num_updates=2
    )
    assert_table(table, ("classic_ops", "recursive_ops"))
    for row in table.rows:
        assert row["recursive_ops"] <= row["classic_ops"] <= row["naive_ops"]
