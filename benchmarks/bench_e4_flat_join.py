"""E4 — Appendix A.1 / Example 8: flat relational IVM baseline (DOz join)."""

from repro.bench.experiments import run_e4_flat_join


def test_e4_flat_join(benchmark, assert_table):
    table = benchmark(run_e4_flat_join, sizes=(400, 800), batch_size=4, num_updates=2)
    assert_table(table, ("naive_seconds", "ivm_seconds"))
