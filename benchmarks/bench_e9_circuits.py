"""E9 — §5.4 / Theorems 9 & 14: NC0 maintenance cones vs growing recompute cones."""

from repro.bench.experiments import run_e9_circuit_cones


def test_e9_circuit_cones(benchmark, assert_table):
    table = benchmark(run_e9_circuit_cones, slot_counts=(4, 8, 16, 32), k=4)
    assert_table(table, ("update_cone", "recompute_cone"))
    update_cones = set(table.column("update_cone"))
    assert len(update_cones) == 1  # constant in database size
    recompute = table.column("recompute_cone")
    assert recompute == sorted(recompute) and recompute[-1] > recompute[0]
