"""E5 — §5.1 / Lemma 6 / Theorem 8: shredding round-trip and equivalence."""

from repro.bench.experiments import run_e5_shredding_roundtrip


def test_e5_shredding_roundtrip(benchmark, assert_table):
    table = benchmark(
        run_e5_shredding_roundtrip, depths=(1, 2, 3), top_cardinality=40, inner_cardinality=4
    )
    assert_table(table, ("roundtrip_ok", "query_equivalent"))
    assert all(row["roundtrip_ok"] and row["query_equivalent"] for row in table.rows)
