"""Shared configuration for the pytest-benchmark suite.

Every benchmark wraps one experiment runner from
:mod:`repro.bench.experiments` with parameters small enough to finish in a
few seconds; the printed tables (and the larger sweeps recorded in
EXPERIMENTS.md) are produced by ``python -m repro.bench.experiments <id>
[--full]``.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def assert_table():
    """Helper: sanity-check that an experiment produced a non-empty table."""

    def _check(table, expected_columns=()):
        assert table.rows, f"experiment {table.title!r} produced no rows"
        for column in expected_columns:
            assert column in table.columns
        return table

    return _check
