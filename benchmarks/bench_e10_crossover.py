"""E10 — §2.2: the IVM advantage shrinks as the batch size approaches n."""

from repro.bench.experiments import run_e10_crossover


def test_e10_crossover(benchmark, assert_table):
    table = benchmark(run_e10_crossover, size=120, batch_fractions=(0.02, 0.25, 1.0))
    assert_table(table, ("d_over_n", "speedup"))
    speedups = table.column("speedup")
    assert speedups[0] > speedups[-1]
