"""E2 — Examples 2–3 / Theorem 4: the delta of filter touches only the update."""

from repro.bench.experiments import run_e2_filter_delta


def test_e2_filter_delta(benchmark, assert_table):
    table = benchmark(run_e2_filter_delta, sizes=(200, 800), batch_size=4, num_updates=2)
    assert_table(table, ("classic_ivm_ops", "naive_ops"))
    assert table.rows[-1]["speedup"] > table.rows[0]["speedup"]
